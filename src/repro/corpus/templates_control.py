"""Control-logic template families: FSMs, arbiters, handshakes, FIFO
occupancy trackers, clock dividers, traffic-light controllers."""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_sequence_detector(rng: random.Random) -> DesignSeed:
    """Mealy detector for the bit pattern 101 (or 110)."""
    pattern = rng.choice(["101", "110"])
    name = f"seq_detect_{pattern}_{design_uid(rng)}"
    if pattern == "101":
        transitions = """
      case (state)
      2'd0:
        state <= din ? 2'd1 : 2'd0;
      2'd1:
        state <= din ? 2'd1 : 2'd2;
      2'd2:
        state <= din ? 2'd1 : 2'd0;
      default:
        state <= 2'd0;
      endcase"""
        found_expr = "(state == 2'd2) && din"
    else:
        transitions = """
      case (state)
      2'd0:
        state <= din ? 2'd1 : 2'd0;
      2'd1:
        state <= din ? 2'd2 : 2'd0;
      2'd2:
        state <= din ? 2'd2 : 2'd0;
      default:
        state <= 2'd0;
      endcase"""
        found_expr = "(state == 2'd2) && !din"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input din,
  output reg found,
  output reg [1:0] state
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      state <= 2'd0;
    else begin{transitions}
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      found <= 1'b0;
    else
      found <= {found_expr};
  end
endmodule
"""
    hints = [
        SvaHint("state_legal", consequent="state <= 2'd2",
                message="the detector has only three legal states"),
        SvaHint("found_fires", antecedent=found_expr, delay=1,
                consequent="found",
                message=f"found must pulse after observing {pattern}"),
        SvaHint("found_quiet", antecedent=f"!({found_expr})", delay=1,
                consequent="!found",
                message="found must stay low without a detection"),
    ]
    meta = TemplateMeta(
        family="fsm",
        params={"pattern": int(pattern, 2)},
        summary=f"A Mealy FSM that raises found for one cycle after the "
                f"serial pattern {pattern} appears on din.",
        behaviour=[
            "state tracks the progress through the target pattern",
            f"found pulses the cycle after the final bit of {pattern}",
            "overlapping occurrences are detected",
            "reset returns the detector to the idle state",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_arbiter(rng: random.Random) -> DesignSeed:
    """Fixed-priority arbiter with registered one-hot grant."""
    channels = rng.choice([2, 3, 4])
    name = f"arbiter_{channels}ch_{design_uid(rng)}"
    grant_terms = []
    for i in range(channels):
        mask = " && ".join([f"!req[{j}]" for j in range(i)] + [f"req[{i}]"])
        grant_terms.append((i, mask))
    comb = "\n".join(
        f"  assign pick[{i}] = {mask};" for i, mask in grant_terms)
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{channels - 1}:0] req,
  output reg [{channels - 1}:0] gnt
);
  wire [{channels - 1}:0] pick;
{comb}
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      gnt <= {channels}'d0;
    else
      gnt <= pick;
  end
endmodule
"""
    hints = [
        SvaHint("grant_onehot0", consequent="$onehot0(gnt)",
                message="at most one requester may hold the grant"),
        SvaHint("top_priority", antecedent="req[0]", delay=1,
                consequent="gnt[0]",
                message="requester 0 has absolute priority"),
        SvaHint("grant_needs_req", consequent="(gnt & ~$past(req)) == 0",
                message="a grant must answer a request from the previous cycle"),
    ]
    meta = TemplateMeta(
        family="arbiter",
        params={"channels": channels},
        summary=f"A {channels}-channel fixed-priority arbiter with a "
                f"registered one-hot grant vector (channel 0 highest).",
        behaviour=[
            "pick selects the lowest-index active request combinationally",
            "gnt registers pick every clock",
            "the grant vector is one-hot or idle",
            "channel 0 always wins when it requests",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_handshake(rng: random.Random) -> DesignSeed:
    """Request/acknowledge handshake register with busy tracking."""
    width = rng.choice([4, 8])
    name = f"handshake_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input req,
  input [{width - 1}:0] req_data,
  output reg ack,
  output reg [{width - 1}:0] ack_data,
  output wire busy
);
  assign busy = req && !ack;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      ack <= 1'b0;
    else
      ack <= req;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      ack_data <= {width}'d0;
    else if (req)
      ack_data <= req_data;
  end
endmodule
"""
    hints = [
        SvaHint("ack_follows_req", antecedent="req", delay=1, consequent="ack",
                message="every request must be acknowledged on the next cycle"),
        SvaHint("ack_data_captures", antecedent="req", delay=1,
                consequent="ack_data == $past(req_data)",
                message="acknowledged data must capture the requested data"),
        SvaHint("no_spurious_ack", antecedent="!req", delay=1, consequent="!ack",
                message="no acknowledge without a request"),
    ]
    meta = TemplateMeta(
        family="handshake",
        params={"width": width},
        summary=f"A single-beat req/ack handshake that captures {width}-bit "
                f"request data.",
        behaviour=[
            "ack answers req with one cycle of latency",
            "ack_data holds the data captured by the last request",
            "busy flags an outstanding, unacknowledged request",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_fifo_tracker(rng: random.Random) -> DesignSeed:
    """FIFO occupancy tracker (counter with guarded push/pop)."""
    depth = rng.choice([4, 8, 15])
    width = max(depth.bit_length(), 2)
    name = f"fifo_track_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input push,
  input pop,
  output reg [{width - 1}:0] count,
  output wire full,
  output wire empty
);
  assign full = count == {width}'d{depth};
  assign empty = count == {width}'d0;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      count <= {width}'d0;
    else if (push && !pop && !full)
      count <= count + {width}'d1;
    else if (pop && !push && !empty)
      count <= count - {width}'d1;
  end
endmodule
"""
    hints = [
        SvaHint("count_bounded", consequent=f"count <= {width}'d{depth}",
                message="occupancy may never exceed the FIFO depth"),
        SvaHint("no_full_empty", consequent="!(full && empty)",
                message="the FIFO cannot be full and empty at once"),
        SvaHint("push_counts", antecedent="push && !pop && !full", delay=1,
                consequent="count == $past(count) + 1",
                message="a push into a non-full FIFO must raise the count"),
        SvaHint("pop_counts", antecedent="pop && !push && !empty", delay=1,
                consequent="count == $past(count) - 1",
                message="a pop from a non-empty FIFO must lower the count"),
    ]
    meta = TemplateMeta(
        family="fifo",
        params={"depth": depth},
        summary=f"Occupancy tracking for a depth-{depth} FIFO with guarded "
                f"push/pop and full/empty flags.",
        behaviour=[
            "count rises on push (unless full) and falls on pop (unless empty)",
            "simultaneous push and pop leave the count unchanged",
            f"full marks count == {depth}; empty marks count == 0",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_clock_divider(rng: random.Random) -> DesignSeed:
    """Divide-by-N tick generator."""
    divide = rng.choice([3, 4, 6, 10])
    width = max((divide - 1).bit_length(), 1)
    name = f"clkdiv_{divide}_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  output wire tick,
  output reg [{width - 1}:0] phase
);
  assign tick = phase == {width}'d{divide - 1};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      phase <= {width}'d0;
    else if (tick)
      phase <= {width}'d0;
    else
      phase <= phase + {width}'d1;
  end
endmodule
"""
    hints = [
        SvaHint("phase_bounded", consequent=f"phase <= {width}'d{divide - 1}",
                message="the phase counter must stay below the divisor"),
        SvaHint("tick_resets_phase", antecedent="tick", delay=1,
                consequent=f"phase == {width}'d0",
                message="the cycle after a tick restarts the phase"),
        SvaHint("tick_position", consequent=f"tick == (phase == {width}'d{divide - 1})",
                message="tick must fire exactly at the terminal phase"),
    ]
    meta = TemplateMeta(
        family="clock_divider",
        params={"divide": divide},
        summary=f"A divide-by-{divide} tick generator with a phase counter.",
        behaviour=[
            f"phase cycles through 0..{divide - 1}",
            "tick pulses during the terminal phase",
            "a tick returns the phase to zero on the next clock",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_traffic_light(rng: random.Random) -> DesignSeed:
    """Three-phase traffic-light controller with per-phase dwell counters."""
    green = rng.choice([3, 5])
    yellow = 2
    red = rng.choice([3, 4])
    width = 4
    name = f"traffic_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  output reg [1:0] light,
  output reg [{width - 1}:0] dwell
);
  wire phase_done;
  assign phase_done = (light == 2'd0 && dwell == {width}'d{green - 1})
      || (light == 2'd1 && dwell == {width}'d{yellow - 1})
      || (light == 2'd2 && dwell == {width}'d{red - 1});
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      light <= 2'd0;
    else if (phase_done) begin
      if (light == 2'd2)
        light <= 2'd0;
      else
        light <= light + 2'd1;
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      dwell <= {width}'d0;
    else if (phase_done)
      dwell <= {width}'d0;
    else
      dwell <= dwell + {width}'d1;
  end
endmodule
"""
    hints = [
        SvaHint("light_legal", consequent="light <= 2'd2",
                message="only green/yellow/red phases are legal"),
        SvaHint("green_to_yellow",
                antecedent=f"light == 2'd0 && dwell == {width}'d{green - 1}",
                delay=1, consequent="light == 2'd1",
                message="green must hand over to yellow after its dwell"),
        SvaHint("red_to_green",
                antecedent=f"light == 2'd2 && dwell == {width}'d{red - 1}",
                delay=1, consequent="light == 2'd0",
                message="red must hand over to green after its dwell"),
    ]
    meta = TemplateMeta(
        family="traffic_light",
        params={"green": green, "yellow": yellow, "red": red},
        summary="A three-phase traffic-light controller (green, yellow, red) "
                "with fixed dwell times per phase.",
        behaviour=[
            f"green lasts {green} cycles, yellow {yellow}, red {red}",
            "dwell counts cycles within the current phase",
            "phase_done advances the light and clears the dwell counter",
            "the sequence is green -> yellow -> red -> green",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


CONTROL_TEMPLATES = {
    "fsm": make_sequence_detector,
    "arbiter": make_arbiter,
    "handshake": make_handshake,
    "fifo": make_fifo_tracker,
    "clock_divider": make_clock_divider,
    "traffic_light": make_traffic_light,
}
