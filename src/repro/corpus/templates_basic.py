"""Basic sequential template families: counters, accumulators, shift
registers, parity trackers, edge detectors.

Every template function takes a seeded :class:`random.Random` and returns a
:class:`DesignSeed` whose SVA hints *hold on the golden design* — the
Stage-2 validator re-checks this, and the unit tests enforce it per family.
"""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_counter(rng: random.Random) -> DesignSeed:
    """Modulo counter with enable."""
    width = rng.choice([3, 4, 5, 6, 8])
    modulo = rng.randrange(3, (1 << width) - 1)
    name = f"mod_counter_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input en,
  output reg [{width - 1}:0] count,
  output wire wrap
);
  assign wrap = en && (count == {width}'d{modulo - 1});
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      count <= {width}'d0;
    else if (en) begin
      if (count == {width}'d{modulo - 1})
        count <= {width}'d0;
      else
        count <= count + {width}'d1;
    end
  end
endmodule
"""
    hints = [
        SvaHint("count_wraps", antecedent=f"en && count == {width}'d{modulo - 1}",
                delay=1, consequent=f"count == {width}'d0",
                message="counter must wrap to zero at the modulus"),
        SvaHint("count_increments",
                antecedent=f"en && count < {width}'d{modulo - 1}",
                delay=1, consequent="count == $past(count) + 1",
                message="counter must increment when enabled"),
        SvaHint("count_in_range", consequent=f"count < {width}'d{modulo}",
                message="counter must stay below the modulus"),
    ]
    meta = TemplateMeta(
        family="counter",
        params={"width": width, "modulo": modulo},
        summary=f"A modulo-{modulo} up-counter with synchronous enable and "
                f"asynchronous active-low reset.",
        behaviour=[
            f"count is a {width}-bit register holding the current count",
            f"when en is high, count increments each clock; reaching "
            f"{modulo - 1} wraps it to 0 on the next cycle",
            "wrap pulses high during the cycle in which the wrap will occur",
            "reset (rst_n low) clears count to 0 asynchronously",
        ],
        sva_hints=hints,
        port_notes={"en": "count-enable strobe", "wrap": "wrap-around indicator"},
    )
    return DesignSeed(name, source, meta)


def make_accumulator(rng: random.Random) -> DesignSeed:
    """The paper's Fig. 1 style accumulator: sums N beats then emits."""
    width = rng.choice([4, 6, 8])
    beats = rng.choice([2, 4])
    cnt_width = max((beats - 1).bit_length(), 1)
    out_width = width + 2
    name = f"accu_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{width - 1}:0] data_in,
  input valid_in,
  output reg valid_out,
  output reg [{out_width - 1}:0] data_out
);
  wire end_cnt;
  reg [{cnt_width - 1}:0] cnt;
  assign end_cnt = valid_in && (cnt == {cnt_width}'d{beats - 1});
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      cnt <= {cnt_width}'d0;
    else if (valid_in) begin
      if (end_cnt)
        cnt <= {cnt_width}'d0;
      else
        cnt <= cnt + {cnt_width}'d1;
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      valid_out <= 1'b0;
    else if (end_cnt)
      valid_out <= 1'b1;
    else
      valid_out <= 1'b0;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      data_out <= {out_width}'d0;
    else if (valid_in) begin
      if (end_cnt)
        data_out <= {{{out_width - width}'d0, data_in}};
      else
        data_out <= data_out + {{{out_width - width}'d0, data_in}};
    end
  end
endmodule
"""
    hints = [
        SvaHint("valid_out_check", antecedent="end_cnt", delay=1,
                consequent="valid_out == 1",
                message="valid_out should be high one cycle after end_cnt"),
        SvaHint("valid_out_idle", antecedent="!end_cnt", delay=1,
                consequent="valid_out == 0",
                message="valid_out must stay low without end_cnt"),
        SvaHint("cnt_bounded",
                consequent=f"cnt <= {cnt_width}'d{beats - 1}",
                message="beat counter must stay within the accumulation window"),
    ]
    meta = TemplateMeta(
        family="accumulator",
        params={"width": width, "beats": beats},
        summary=f"An accumulator that sums {beats} valid input beats and "
                f"pulses valid_out when a window completes.",
        behaviour=[
            f"data_in beats (when valid_in is high) are summed into data_out",
            f"end_cnt marks the {beats}-th beat of a window",
            "valid_out pulses for one cycle following end_cnt",
            "a new window restarts the sum from the incoming beat",
        ],
        sva_hints=hints,
        port_notes={"valid_in": "input beat qualifier",
                    "valid_out": "window-complete pulse"},
    )
    return DesignSeed(name, source, meta)


def make_shift_register(rng: random.Random) -> DesignSeed:
    """Serial-in serial-out shift register."""
    depth = rng.choice([3, 4, 6, 8])
    name = f"shift_reg_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input serial_in,
  output wire serial_out,
  output wire [{depth - 1}:0] taps
);
  reg [{depth - 1}:0] sr;
  assign serial_out = sr[{depth - 1}];
  assign taps = sr;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      sr <= {depth}'d0;
    else
      sr <= {{sr[{depth - 2}:0], serial_in}};
  end
endmodule
"""
    hints = [
        SvaHint("delay_line", consequent=f"serial_out == $past(serial_in, {depth})",
                message=f"serial_out must equal serial_in delayed {depth} cycles"),
        SvaHint("shift_step", antecedent="serial_in", delay=1,
                consequent="sr[0] == 1",
                message="the newest bit must land in sr[0]"),
    ]
    meta = TemplateMeta(
        family="shift_register",
        params={"depth": depth},
        summary=f"A {depth}-stage serial shift register with parallel taps.",
        behaviour=[
            "each clock shifts serial_in into bit 0",
            f"serial_out presents the input delayed by {depth} cycles",
            "taps exposes the whole register",
            "reset clears every stage",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_parity_tracker(rng: random.Random) -> DesignSeed:
    """Registers the parity of the input word each cycle."""
    width = rng.choice([4, 8, 12, 16])
    odd = rng.choice([0, 1])
    op = "~^" if odd else "^"
    kind = "odd" if odd else "even"
    name = f"parity_{kind}_{design_uid(rng)}"
    parity_expr = f"{op}data_in" if not odd else f"!(^data_in)"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{width - 1}:0] data_in,
  output reg parity,
  output wire parity_now
);
  assign parity_now = {parity_expr};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      parity <= 1'b{odd};
    else
      parity <= {parity_expr};
  end
endmodule
"""
    hints = [
        SvaHint("parity_tracks", consequent="parity == $past(parity_now)",
                message="registered parity must track last cycle's input parity"),
        SvaHint("parity_comb", consequent=f"parity_now == ({parity_expr})",
                message="combinational parity must match the reduction"),
    ]
    meta = TemplateMeta(
        family="parity",
        params={"width": width, "odd": odd},
        summary=f"A {kind}-parity tracker over a {width}-bit input word.",
        behaviour=[
            f"parity_now is the {kind} parity of data_in this cycle",
            "parity registers parity_now with one cycle of delay",
            f"reset presets parity to {odd}",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_edge_detector(rng: random.Random) -> DesignSeed:
    """Rising/falling edge pulse generator."""
    falling = rng.choice([0, 1])
    kind = "fall" if falling else "rise"
    name = f"edge_{kind}_{design_uid(rng)}"
    if falling:
        pulse_expr = "~sig_in & prev"
        sva_trig = "$fell(sig_in)"
    else:
        pulse_expr = "sig_in & ~prev"
        sva_trig = "$rose(sig_in)"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input sig_in,
  output wire pulse,
  output reg pulse_q
);
  reg prev;
  assign pulse = {pulse_expr};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      prev <= 1'b0;
    else
      prev <= sig_in;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      pulse_q <= 1'b0;
    else
      pulse_q <= {pulse_expr};
  end
endmodule
"""
    hints = [
        SvaHint("edge_pulses", antecedent=sva_trig, delay=0, consequent="pulse",
                message=f"pulse must fire on a {kind}ing edge of sig_in"),
        SvaHint("pulse_q_delay", consequent="pulse_q == $past(pulse)",
                message="registered pulse must lag the combinational pulse by one cycle"),
    ]
    meta = TemplateMeta(
        family="edge_detector",
        params={"falling": falling},
        summary=f"A {kind}ing-edge detector producing combinational and "
                f"registered single-cycle pulses.",
        behaviour=[
            "prev registers sig_in each cycle",
            f"pulse is high exactly when sig_in {'falls' if falling else 'rises'}",
            "pulse_q is pulse delayed by one clock",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


BASIC_TEMPLATES = {
    "counter": make_counter,
    "accumulator": make_accumulator,
    "shift_register": make_shift_register,
    "parity": make_parity_tracker,
    "edge_detector": make_edge_detector,
}
