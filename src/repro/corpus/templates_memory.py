"""Buffering/storage template families: shift FIFOs and skid buffers.

Unlike :mod:`repro.corpus.templates_control`'s occupancy *tracker*, the
FIFO here carries real data through unrolled slots, so data-integrity
properties (head shifting, flow-through on simultaneous push+pop) exist
for the SVA oracle to assert and for injected bugs to violate.
"""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_sync_fifo(rng: random.Random) -> DesignSeed:
    """Depth-2 shift FIFO with unrolled data slots (slot 0 is the head)."""
    width = rng.choice([4, 8])
    name = f"sync_fifo_{width}w_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input push,
  input pop,
  input [{width - 1}:0] din,
  output wire [{width - 1}:0] dout,
  output reg [1:0] count,
  output wire full,
  output wire empty
);
  wire do_push;
  wire do_pop;
  reg [{width - 1}:0] s0;
  reg [{width - 1}:0] s1;
  assign full = count == 2'd2;
  assign empty = count == 2'd0;
  assign do_push = push && !full;
  assign do_pop = pop && !empty;
  assign dout = s0;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      count <= 2'd0;
    else if (do_push && !do_pop)
      count <= count + 2'd1;
    else if (do_pop && !do_push)
      count <= count - 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      s0 <= {width}'d0;
    else if (do_pop && count == 2'd2)
      s0 <= s1;
    else if (do_pop && do_push && count == 2'd1)
      s0 <= din;
    else if (do_push && count == 2'd0)
      s0 <= din;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      s1 <= {width}'d0;
    else if (do_push && !do_pop && count == 2'd1)
      s1 <= din;
  end
endmodule
"""
    hints = [
        SvaHint("count_bounded", consequent="count <= 2'd2",
                message="occupancy may never exceed the FIFO depth"),
        SvaHint("no_full_empty", consequent="!(full && empty)",
                message="the FIFO cannot be full and empty at once"),
        SvaHint("head_shifts", antecedent="pop && count == 2'd2", delay=1,
                consequent="dout == $past(s1)",
                message="popping a full FIFO must shift slot 1 to the head"),
        SvaHint("first_push_lands",
                antecedent="push && count == 2'd0", delay=1,
                consequent="count == 2'd1 && dout == $past(din)",
                message="a push into an empty FIFO must land at the head"),
        SvaHint("pushpop_flows",
                antecedent="push && pop && count == 2'd1", delay=1,
                consequent="count == 2'd1 && dout == $past(din)",
                message="simultaneous push+pop must flow data through"),
    ]
    meta = TemplateMeta(
        family="sync_fifo",
        params={"width": width, "depth": 2},
        summary=f"A depth-2 synchronous FIFO carrying {width}-bit data in "
                f"unrolled shift slots (slot 0 presents dout).",
        behaviour=[
            "push enqueues din unless full; pop dequeues unless empty",
            "slot 0 is the head and drives dout combinationally",
            "popping with two entries shifts slot 1 into the head",
            "simultaneous push and pop keep the occupancy constant",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_skid_buffer(rng: random.Random) -> DesignSeed:
    """One-deep skid buffer: accepts while draining, holds on backpressure."""
    width = rng.choice([4, 8])
    name = f"skid_buf_{width}w_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input in_valid,
  input [{width - 1}:0] in_data,
  input out_ready,
  output wire in_ready,
  output wire out_valid,
  output reg full,
  output reg [{width - 1}:0] data_q
);
  assign in_ready = !full || out_ready;
  assign out_valid = full;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      full <= 1'b0;
    else if (in_valid && in_ready)
      full <= 1'b1;
    else if (out_ready)
      full <= 1'b0;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      data_q <= {width}'d0;
    else if (in_valid && in_ready)
      data_q <= in_data;
  end
endmodule
"""
    hints = [
        SvaHint("valid_mirrors_full", consequent="out_valid == full",
                message="downstream valid must mirror the occupied buffer"),
        SvaHint("accept_loads", antecedent="in_valid && in_ready", delay=1,
                consequent="full && data_q == $past(in_data)",
                message="an accepted beat must occupy the buffer with its data"),
        SvaHint("drain_frees", antecedent="full && out_ready && !in_valid",
                delay=1, consequent="!full",
                message="draining without a refill must free the buffer"),
        SvaHint("backpressure_holds", antecedent="full && !out_ready",
                delay=1, consequent="full && data_q == $past(data_q)",
                message="a stalled beat must be held unchanged"),
    ]
    meta = TemplateMeta(
        family="skid_buffer",
        params={"width": width},
        summary=f"A one-deep skid buffer for {width}-bit beats that keeps "
                f"accepting while the output drains and holds data under "
                f"backpressure.",
        behaviour=[
            "in_ready is high when the buffer is empty or draining",
            "an accepted beat is captured into data_q",
            "out_valid presents the occupied buffer downstream",
            "backpressure (out_ready low) freezes the held beat",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


MEMORY_TEMPLATES = {
    "sync_fifo": make_sync_fifo,
    "skid_buffer": make_skid_buffer,
}
