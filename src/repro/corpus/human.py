"""SVA-Eval-Human: hand-written designs with hand-crafted bugs.

The paper's 38 human cases come from the RTLLM benchmark with manually
curated bugs.  Offline we hand-write six RTLLM-style designs (pipelined
adder, calendar clock, serial-to-parallel converter, width converter,
triangle signal generator, pulse detector) and hand-craft 6-7 bugs each —
deliberately subtler than the machine mutations: indirect cones, carry
chains, guard-order mistakes, cross-stage swaps.  A small share of bugs is
intentionally *outside* the mutation-inverse repair space, modelling the
long tail of human errors no candidate enumeration covers.

``build_human_cases`` validates every case through the same Stage-2
machinery as machine cases (golden passes BMC, buggy fails) so the
benchmark is exactly as trustworthy as the generated half.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bugs.classify import classify_conditionality, classify_relation
from repro.bugs.injector import BugRecord, single_line_diff
from repro.bugs.taxonomy import BugKind
from repro.datagen.records import SvaBugEntry, SvaEvalCase
from repro.datagen.stage2 import _failing_assertion_signals
from repro.oracles.spec import write_spec
from repro.sva.bmc import BmcConfig, bounded_check
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module


class HumanBug:
    """One hand-crafted bug: replace the unique line containing ``find``."""

    __slots__ = ("find", "replace", "kind", "note")

    def __init__(self, find: str, replace: str, kind: BugKind, note: str):
        self.find = find
        self.replace = replace
        self.kind = kind
        self.note = note


class HumanDesign:
    __slots__ = ("name", "source", "sva_blocks", "summary", "bugs")

    def __init__(self, name: str, source: str, sva_blocks: List[str],
                 summary: str, bugs: List[HumanBug]):
        self.name = name
        self.source = source
        self.sva_blocks = sva_blocks
        self.summary = summary
        self.bugs = bugs


class HumanCaseError(Exception):
    """A hand-crafted case failed validation (design or bug is wrong)."""


def _designs() -> List[HumanDesign]:
    designs: List[HumanDesign] = []

    # ------------------------------------------------------------------ 1
    adder = HumanDesign(
        name="adder_pipe8",
        summary="A two-stage pipelined 8-bit adder: stage 1 registers the "
                "operands, stage 2 registers the sum with carry-out.",
        source="""
module adder_pipe8 (
  input clk,
  input rst_n,
  input [7:0] a,
  input [7:0] b,
  input en,
  output reg [8:0] sum,
  output reg valid
);
  reg [7:0] a_q;
  reg [7:0] b_q;
  reg en_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      a_q <= 8'd0;
      b_q <= 8'd0;
      en_q <= 1'b0;
    end
    else begin
      a_q <= a;
      b_q <= b;
      en_q <= en;
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      sum <= 9'd0;
      valid <= 1'b0;
    end
    else begin
      sum <= {1'b0, a_q} + {1'b0, b_q};
      valid <= en_q;
    end
  end
endmodule
""",
        sva_blocks=[
            "property sum_correct;\n  @(posedge clk) disable iff (!rst_n) "
            "en_q |-> ##1 sum == $past({1'b0, a_q} + {1'b0, b_q});\nendproperty",
            'sum_correct_assertion: assert property (sum_correct) else '
            '$error("stage-2 sum must add the stage-1 operands");',
            "property end_to_end;\n  @(posedge clk) disable iff (!rst_n) "
            "en |-> ##2 sum == $past({1'b0, a} + {1'b0, b}, 2);\nendproperty",
            'end_to_end_assertion: assert property (end_to_end) else '
            '$error("the pipeline must add the operands sampled with en");',
            "property valid_latency;\n  @(posedge clk) disable iff (!rst_n) "
            "en |-> ##2 valid;\nendproperty",
            'valid_latency_assertion: assert property (valid_latency) else '
            '$error("valid must emerge two cycles after en");',
        ],
        bugs=[
            HumanBug("a_q <= a;", "a_q <= b;", BugKind.VAR,
                     "cross-operand swap in stage 1"),
            HumanBug("sum <= {1'b0, a_q} + {1'b0, b_q};",
                     "sum <= {1'b0, a_q} - {1'b0, b_q};", BugKind.OP,
                     "subtract instead of add in stage 2"),
            HumanBug("valid <= en_q;", "valid <= en;", BugKind.VAR,
                     "valid skips the pipeline stage"),
            HumanBug("en_q <= en;", "en_q <= 1'b0;", BugKind.VALUE,
                     "enable chain broken"),
            HumanBug("sum <= {1'b0, a_q} + {1'b0, b_q};",
                     "sum <= {1'b0, a_q} + {1'b0, a_q};", BugKind.VAR,
                     "operand duplication in the adder"),
            HumanBug("b_q <= b;", "b_q <= b_q;", BugKind.VAR,
                     "stage-1 register feeds back on itself"),
        ])
    designs.append(adder)

    # ------------------------------------------------------------------ 2
    calendar = HumanDesign(
        name="calendar_clock",
        summary="A seconds/minutes cascade: seconds count 0-59, minutes "
                "advance when seconds wrap.",
        source="""
module calendar_clock (
  input clk,
  input rst_n,
  input tick,
  output reg [5:0] secs,
  output reg [5:0] mins
);
  wire sec_wrap;
  assign sec_wrap = tick && (secs == 6'd59);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      secs <= 6'd0;
    else if (tick) begin
      if (secs == 6'd59)
        secs <= 6'd0;
      else
        secs <= secs + 6'd1;
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      mins <= 6'd0;
    else if (sec_wrap) begin
      if (mins == 6'd59)
        mins <= 6'd0;
      else
        mins <= mins + 6'd1;
    end
  end
endmodule
""",
        sva_blocks=[
            "property secs_bound;\n  @(posedge clk) disable iff (!rst_n) "
            "secs <= 6'd59;\nendproperty",
            'secs_bound_assertion: assert property (secs_bound) else '
            '$error("seconds must stay below 60");',
            "property minute_carry;\n  @(posedge clk) disable iff (!rst_n) "
            "tick && secs == 6'd59 && mins < 6'd59 |-> ##1 "
            "mins == $past(mins) + 1;\nendproperty",
            'minute_carry_assertion: assert property (minute_carry) else '
            '$error("a seconds wrap must advance the minutes");',
            "property minute_hold;\n  @(posedge clk) disable iff (!rst_n) "
            "!(tick && secs == 6'd59) |-> ##1 mins == $past(mins);\nendproperty",
            'minute_hold_assertion: assert property (minute_hold) else '
            '$error("minutes may only advance on a seconds wrap");',
        ],
        bugs=[
            HumanBug("assign sec_wrap = tick && secs == 6'd59;",
                     "assign sec_wrap = tick && secs == 6'd58;",
                     BugKind.VALUE, "wrap detected one second early"),
            HumanBug("secs <= secs + 6'd1;", "secs <= secs + 6'd2;",
                     BugKind.VALUE, "seconds advance by two"),
            HumanBug("if (secs == 6'd59)", "if (secs == 6'd60)",
                     BugKind.VALUE, "seconds wrap threshold off by one"),
            HumanBug("else if (sec_wrap)", "else if (tick)",
                     BugKind.VAR, "minutes advance on every tick"),
            HumanBug("mins <= mins + 6'd1;", "mins <= mins + 6'd1 + 6'd1;",
                     BugKind.VALUE, "minutes double-step (outside the "
                                    "single-edit repair space)"),
            HumanBug("if (mins == 6'd59)", "if (mins != 6'd59)",
                     BugKind.OP, "minute wrap condition inverted"),
        ])
    designs.append(calendar)

    # ------------------------------------------------------------------ 3
    s2p = HumanDesign(
        name="serial2parallel",
        summary="Serial-to-parallel converter: collects 8 serial bits MSB "
                "first, pulses done when a byte completes.",
        source="""
module serial2parallel (
  input clk,
  input rst_n,
  input din,
  input din_valid,
  output reg [7:0] dout,
  output reg done
);
  reg [2:0] bit_cnt;
  wire byte_end;
  assign byte_end = din_valid && (bit_cnt == 3'd7);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      bit_cnt <= 3'd0;
    else if (din_valid)
      bit_cnt <= bit_cnt + 3'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      dout <= 8'd0;
    else if (din_valid)
      dout <= {dout[6:0], din};
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      done <= 1'b0;
    else
      done <= byte_end;
  end
endmodule
""",
        sva_blocks=[
            "property done_position;\n  @(posedge clk) disable iff (!rst_n) "
            "din_valid && bit_cnt == 3'd7 |-> ##1 done;\nendproperty",
            'done_position_assertion: assert property (done_position) else '
            '$error("done must pulse after the eighth bit");',
            "property shift_in;\n  @(posedge clk) disable iff (!rst_n) "
            "din_valid |-> ##1 dout[0] == $past(din);\nendproperty",
            'shift_in_assertion: assert property (shift_in) else '
            '$error("the newest serial bit must land in dout[0]");',
            "property quiet_done;\n  @(posedge clk) disable iff (!rst_n) "
            "!(din_valid && bit_cnt == 3'd7) |-> ##1 !done;\nendproperty",
            'quiet_done_assertion: assert property (quiet_done) else '
            '$error("done must stay low mid-byte");',
            "property count_steps;\n  @(posedge clk) disable iff (!rst_n) "
            "din_valid |-> ##1 bit_cnt == $past(bit_cnt + 3'd1);\nendproperty",
            'count_steps_assertion: assert property (count_steps) else '
            '$error("each valid bit must advance the bit counter by one");',
        ],
        bugs=[
            HumanBug("assign byte_end = din_valid && bit_cnt == 3'd7;",
                     "assign byte_end = din_valid && bit_cnt == 3'd0;",
                     BugKind.VALUE, "byte boundary at the wrong count"),
            HumanBug("dout <= {dout[6:0], din};",
                     "dout <= {dout[6:0], din_valid};", BugKind.VAR,
                     "shifts the qualifier instead of the data"),
            HumanBug("done <= byte_end;", "done <= !byte_end;", BugKind.OP,
                     "done polarity inverted"),
            HumanBug("bit_cnt <= bit_cnt + 3'd1;",
                     "bit_cnt <= bit_cnt - 3'd1;", BugKind.OP,
                     "bit counter runs backwards"),
            HumanBug("bit_cnt <= bit_cnt + 3'd1;",
                     "bit_cnt <= bit_cnt + din;", BugKind.VAR,
                     "counter step depends on the data bit"),
            HumanBug("done <= byte_end;", "done <= din_valid;", BugKind.VAR,
                     "done tracks valid instead of the byte boundary"),
        ])
    designs.append(s2p)

    # ------------------------------------------------------------------ 4
    w8to16 = HumanDesign(
        name="width_8to16",
        summary="Width converter: pairs consecutive valid bytes into one "
                "16-bit word, first byte in the high half.",
        source="""
module width_8to16 (
  input clk,
  input rst_n,
  input valid_in,
  input [7:0] data_in,
  output reg valid_out,
  output reg [15:0] data_out
);
  reg half_full;
  reg [7:0] data_lock;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      half_full <= 1'b0;
    else if (valid_in)
      half_full <= !half_full;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      data_lock <= 8'd0;
    else if (valid_in && !half_full)
      data_lock <= data_in;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      data_out <= 16'd0;
      valid_out <= 1'b0;
    end
    else if (valid_in && half_full) begin
      data_out <= {data_lock, data_in};
      valid_out <= 1'b1;
    end
    else
      valid_out <= 1'b0;
  end
endmodule
""",
        sva_blocks=[
            "property pair_completes;\n  @(posedge clk) disable iff (!rst_n) "
            "valid_in && half_full |-> ##1 valid_out;\nendproperty",
            'pair_completes_assertion: assert property (pair_completes) else '
            '$error("the second byte of a pair must produce a word");',
            "property word_low_half;\n  @(posedge clk) disable iff (!rst_n) "
            "valid_in && half_full |-> ##1 data_out[7:0] == $past(data_in);\nendproperty",
            'word_low_half_assertion: assert property (word_low_half) else '
            '$error("the second byte must occupy the low half");',
            "property no_lone_word;\n  @(posedge clk) disable iff (!rst_n) "
            "!(valid_in && half_full) |-> ##1 !valid_out;\nendproperty",
            'no_lone_word_assertion: assert property (no_lone_word) else '
            '$error("a word may only complete on the second byte");',
            "property phase_toggles;\n  @(posedge clk) disable iff (!rst_n) "
            "valid_in |-> ##1 half_full == !$past(half_full);\nendproperty",
            'phase_toggles_assertion: assert property (phase_toggles) else '
            '$error("every valid byte must flip the phase");',
            "property lock_captures;\n  @(posedge clk) disable iff (!rst_n) "
            "valid_in && !half_full |-> ##1 data_lock == $past(data_in);\nendproperty",
            'lock_captures_assertion: assert property (lock_captures) else '
            '$error("the first byte of a pair must be locked");',
        ],
        bugs=[
            HumanBug("data_out <= {data_lock, data_in};",
                     "data_out <= {data_in, data_lock};", BugKind.VAR,
                     "byte order swapped"),
            HumanBug("else if (valid_in && !half_full)",
                     "else if (valid_in && half_full)", BugKind.OP,
                     "lock captures on the wrong phase"),
            HumanBug("half_full <= !half_full;", "half_full <= 1'b1;",
                     BugKind.VALUE, "phase toggle stuck high"),
            HumanBug("else if (valid_in && half_full)",
                     "else if (valid_in || half_full)", BugKind.OP,
                     "word completes without a second byte"),
            HumanBug("data_lock <= data_in;", "data_lock <= data_in + 8'd1;",
                     BugKind.VALUE, "locked byte off by one"),
            HumanBug("data_lock <= data_in;", "data_lock <= data_out[7:0];",
                     BugKind.VAR, "lock recycles the previous word (outside "
                                  "the single-edit repair space)"),
        ])
    designs.append(w8to16)

    # ------------------------------------------------------------------ 5
    siggen = HumanDesign(
        name="signal_generator",
        summary="Triangle-wave generator: ramps up to the peak, then down "
                "to zero, direction held in a mode register.",
        source="""
module signal_generator (
  input clk,
  input rst_n,
  output reg [4:0] wave,
  output reg downward
);
  wire at_peak;
  wire at_zero;
  assign at_peak = wave == 5'd20;
  assign at_zero = wave == 5'd0;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      downward <= 1'b0;
    else if (at_peak)
      downward <= 1'b1;
    else if (at_zero)
      downward <= 1'b0;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      wave <= 5'd0;
    else if (downward) begin
      if (!at_zero)
        wave <= wave - 5'd1;
    end
    else begin
      if (!at_peak)
        wave <= wave + 5'd1;
      else
        wave <= wave - 5'd1;
    end
  end
endmodule
""",
        sva_blocks=[
            "property wave_bounded;\n  @(posedge clk) disable iff (!rst_n) "
            "wave <= 5'd20;\nendproperty",
            'wave_bounded_assertion: assert property (wave_bounded) else '
            '$error("the wave must never exceed the peak");',
            "property turns_at_peak;\n  @(posedge clk) disable iff (!rst_n) "
            "at_peak |-> ##1 downward;\nendproperty",
            'turns_at_peak_assertion: assert property (turns_at_peak) else '
            '$error("reaching the peak must set the downward mode");',
            "property up_step;\n  @(posedge clk) disable iff (!rst_n) "
            "!downward && wave < 5'd20 |-> ##1 wave == $past(wave) + 1;\nendproperty",
            'up_step_assertion: assert property (up_step) else '
            '$error("the upward ramp must climb by one per cycle");',
            "property down_step;\n  @(posedge clk) disable iff (!rst_n) "
            "downward && wave > 5'd0 |-> ##1 wave == $past(wave) - 1;\nendproperty",
            'down_step_assertion: assert property (down_step) else '
            '$error("the downward ramp must descend by one per cycle");',
            "property resumes_up;\n  @(posedge clk) disable iff (!rst_n) "
            "wave == 5'd0 |-> ##1 !downward;\nendproperty",
            'resumes_up_assertion: assert property (resumes_up) else '
            '$error("reaching zero must clear the downward mode");',
        ],
        bugs=[
            HumanBug("assign at_peak = wave == 5'd20;",
                     "assign at_peak = wave == 5'd21;", BugKind.VALUE,
                     "peak detector above the peak"),
            HumanBug("wave <= wave + 5'd1;", "wave <= wave + 5'd2;",
                     BugKind.VALUE, "upward ramp steps by two"),
            HumanBug("else if (at_peak)", "else if (at_zero)", BugKind.VAR,
                     "direction flips at the wrong extreme"),
            HumanBug("downward <= 1'b1;", "downward <= 1'b0;", BugKind.VALUE,
                     "peak fails to set downward mode"),
            HumanBug("if (!at_zero)", "if (!at_peak)", BugKind.VAR,
                     "downward guard checks the wrong extreme"),
            HumanBug("assign at_zero = wave == 5'd0;",
                     "assign at_zero = wave == 5'd2;",
                     BugKind.VALUE, "floor detector two steps early"),
        ])
    designs.append(siggen)

    # ------------------------------------------------------------------ 6
    pulse = HumanDesign(
        name="pulse_detect",
        summary="Detects a clean 0-1-0 pulse on a noisy input: output "
                "pulses for one cycle after the pattern completes.",
        source="""
module pulse_detect (
  input clk,
  input rst_n,
  input sig,
  output reg detected
);
  reg [1:0] history;
  wire pattern_now;
  assign pattern_now = (history == 2'b01) && !sig;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      history <= 2'b00;
    else
      history <= {history[0], sig};
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      detected <= 1'b0;
    else
      detected <= pattern_now;
  end
endmodule
""",
        sva_blocks=[
            "property detect_fires;\n  @(posedge clk) disable iff (!rst_n) "
            "$past(sig, 2) == 0 && $past(sig) == 1 && !sig |-> ##1 detected;\nendproperty",
            'detect_fires_assertion: assert property (detect_fires) else '
            '$error("a completed 0-1-0 pulse must be flagged");',
            "property detect_quiet;\n  @(posedge clk) disable iff (!rst_n) "
            "!($past(sig, 2) == 0 && $past(sig) == 1 && !sig) |-> ##1 !detected;\nendproperty",
            'detect_quiet_assertion: assert property (detect_quiet) else '
            '$error("no detection without a completed pulse");',
        ],
        bugs=[
            HumanBug("assign pattern_now = history == 2'b01 && !sig;",
                     "assign pattern_now = history == 2'b10 && !sig;",
                     BugKind.VALUE, "pattern mask mistakes bit order"),
            HumanBug("history <= {history[0], sig};",
                     "history <= {history[1], sig};", BugKind.VALUE,
                     "history shifts the wrong bit"),
            HumanBug("detected <= pattern_now;", "detected <= sig;",
                     BugKind.VAR, "detector passes the raw input through"),
            HumanBug("assign pattern_now = history == 2'b01 && !sig;",
                     "assign pattern_now = history == 2'b01 && sig;",
                     BugKind.OP, "pulse end polarity dropped"),
            HumanBug("detected <= pattern_now;", "detected <= !pattern_now;",
                     BugKind.OP, "detector output inverted"),
            HumanBug("history <= {history[0], sig};",
                     "history <= {history[0], detected};", BugKind.VAR,
                     "history samples the output instead of the input"),
            HumanBug("assign pattern_now = history == 2'b01 && !sig;",
                     "assign pattern_now = history == 2'b00 && !sig;",
                     BugKind.VALUE, "pattern mask expects a silent line"),
            HumanBug("detected <= pattern_now;", "detected <= 1'b0;",
                     BugKind.VALUE, "detector output stuck low"),
        ])
    designs.append(pulse)

    return designs


def _make_case(design: HumanDesign, bug: HumanBug, case_index: int,
               bmc: BmcConfig) -> SvaEvalCase:
    golden_result = compile_source(design.source)
    if not golden_result.ok:
        raise HumanCaseError(
            f"{design.name}: golden source does not compile:\n"
            f"{golden_result.failure_summary()}")
    golden_canonical = write_module(golden_result.module)

    if bug.find not in golden_canonical:
        raise HumanCaseError(
            f"{design.name}: bug anchor {bug.find!r} not found in the "
            f"canonical source")
    buggy_raw = golden_canonical.replace(bug.find, bug.replace, 1)
    buggy_result = compile_source(buggy_raw)
    if not buggy_result.ok:
        raise HumanCaseError(
            f"{design.name}: bug {bug.note!r} breaks compilation:\n"
            f"{buggy_result.failure_summary()}")
    buggy_canonical = write_module(buggy_result.module)

    line = single_line_diff(golden_canonical, buggy_canonical)
    if line is None:
        raise HumanCaseError(
            f"{design.name}: bug {bug.note!r} does not change exactly one "
            f"canonical line")

    golden_with_sva = compile_with_sva(golden_canonical, design.sva_blocks)
    if not golden_with_sva.ok:
        raise HumanCaseError(
            f"{design.name}: SVAs do not compile:\n"
            f"{golden_with_sva.failure_summary()}")
    golden_check = bounded_check(golden_with_sva.design, bmc)
    if not golden_check.passed_bound:
        raise HumanCaseError(
            f"{design.name}: SVAs fail on the golden design:\n"
            f"{golden_check.log_text()}")

    buggy_with_sva = compile_with_sva(buggy_canonical, design.sva_blocks)
    if not buggy_with_sva.ok:
        raise HumanCaseError(
            f"{design.name}: buggy design with SVAs does not compile")
    buggy_check = bounded_check(buggy_with_sva.design, bmc)
    if not buggy_check.failed:
        raise HumanCaseError(
            f"{design.name}: bug {bug.note!r} fires no assertion within "
            f"the bound")

    buggy_module = parse_module(buggy_canonical)
    buggy_lines = write_module(buggy_module).splitlines()
    golden_lines = golden_canonical.splitlines()
    record = BugRecord(
        design_name=design.name,
        buggy_source=write_module(buggy_module),
        golden_source=golden_canonical,
        line=line,
        buggy_line=buggy_lines[line - 1].strip(),
        fixed_line=golden_lines[line - 1].strip(),
        op_name="human",
        kind=bug.kind,
        conditionality=classify_conditionality(buggy_module, line),
        description=bug.note,
    )
    labels = sorted({f.label for f in buggy_check.failures})
    source_with_sva = write_module(buggy_with_sva.module)
    signals = _failing_assertion_signals(source_with_sva, labels)
    relation = classify_relation(buggy_module, line, signals)

    spec = write_spec(golden_canonical, None, design.name)
    spec += "\n" + design.summary + "\n"
    entry = SvaBugEntry(
        record=record, spec=spec,
        buggy_source_with_sva=source_with_sva,
        logs=buggy_check.log_text(),
        failing_labels=labels, relation=relation,
        assertion_signals=signals)
    return SvaEvalCase(f"human_{case_index:04d}", entry, origin="human")


def build_human_cases(bmc: Optional[BmcConfig] = None) -> List[SvaEvalCase]:
    """Build and validate every hand-crafted case (paper: 38 cases).

    The default bound is deeper than the machine pipeline's: hand-written
    designs like the calendar clock need ~60 cycles to reach their wrap
    conditions (the directed all-ones stimulus covers them determinately).
    """
    bmc = bmc or BmcConfig(depth=70, random_trials=24)
    cases: List[SvaEvalCase] = []
    index = 0
    for design in _designs():
        for bug in design.bugs:
            cases.append(_make_case(design, bug, index, bmc))
            index += 1
    return cases
