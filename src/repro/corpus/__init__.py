"""Synthetic RTL corpus (substitute for the paper's HuggingFace corpus).

The paper augments 108,971 open-source Verilog samples; offline we generate
designs from parameterized template families instead.  Families are chosen
to span the paper's five code-length bins and to give the bug injector the
structural variety its Table I taxonomy needs (conditionals, operators,
constants, direct/indirect assertion cones).

- :mod:`repro.corpus.generator` — seeded sampling of template instances.
- :mod:`repro.corpus.human` — hand-written designs with hand-crafted bugs
  (the SVA-Eval-Human substitute, standing in for RTLLM-derived cases).
- :mod:`repro.corpus.syntax_breaker` — syntax/semantic corruptions for the
  Verilog-PT pretraining split (the paper keeps non-compiling code).
"""

from repro.corpus.generator import (
    DEFAULT_FAMILY_WEIGHTS,
    CorpusGenerator,
    CorpusTask,
    corpus_unit,
    resolve_families,
)
from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta
from repro.corpus.registry import (
    SCENARIO_FAMILIES,
    TEMPLATE_FAMILIES,
    template_names,
)

__all__ = [
    "CorpusGenerator",
    "CorpusTask",
    "corpus_unit",
    "resolve_families",
    "DesignSeed",
    "SvaHint",
    "TemplateMeta",
    "DEFAULT_FAMILY_WEIGHTS",
    "SCENARIO_FAMILIES",
    "TEMPLATE_FAMILIES",
    "template_names",
]
