"""State-machine template families with handshake protocols.

Control-heavy scenarios the datapath-leaning seed corpus never produces:
a Moore FSM driving a start/busy/done protocol and a Mealy valid/ready
acceptor.  Both keep their state registers on ports so the SVA hints (and
the bugs later injected against them) can talk about control state
directly.
"""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_moore_handshake(rng: random.Random) -> DesignSeed:
    """Moore FSM (idle/run/done) with a dwell counter and start handshake."""
    steps = rng.choice([2, 3, 4])
    width = max((steps - 1).bit_length(), 1)
    name = f"moore_hs_{steps}s_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input start,
  output wire busy,
  output wire done,
  output reg [1:0] state,
  output reg [{width - 1}:0] step
);
  assign busy = state == 2'd1;
  assign done = state == 2'd2;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      state <= 2'd0;
    else begin
      case (state)
      2'd0:
        state <= start ? 2'd1 : 2'd0;
      2'd1:
        state <= (step == {width}'d{steps - 1}) ? 2'd2 : 2'd1;
      2'd2:
        state <= 2'd0;
      default:
        state <= 2'd0;
      endcase
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      step <= {width}'d0;
    else if (state == 2'd1 && step != {width}'d{steps - 1})
      step <= step + {width}'d1;
    else
      step <= {width}'d0;
  end
endmodule
"""
    hints = [
        SvaHint("state_legal", consequent="state <= 2'd2",
                message="only idle/run/done states are legal"),
        SvaHint("busy_moore", consequent="busy == (state == 2'd1)",
                message="busy is a Moore output of the run state"),
        SvaHint("start_launches", antecedent="state == 2'd0 && start",
                delay=1, consequent="state == 2'd1",
                message="a start request in idle must launch the run"),
        SvaHint("done_one_cycle", antecedent="done", delay=1,
                consequent="state == 2'd0",
                message="done must last one cycle before returning to idle"),
        SvaHint("step_bounded", consequent=f"step <= {width}'d{steps - 1}",
                message="the dwell counter must stay below the step count"),
    ]
    meta = TemplateMeta(
        family="moore_handshake",
        params={"steps": steps},
        summary=f"A Moore FSM running a start/busy/done handshake: start "
                f"launches a {steps}-step run, then done pulses for one "
                f"cycle.",
        behaviour=[
            "start in the idle state launches the run state",
            f"the run state dwells for {steps} steps counted by step",
            "done pulses for exactly one cycle after the run completes",
            "busy and done are Moore outputs decoded from the state",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_mealy_handshake(rng: random.Random) -> DesignSeed:
    """Mealy valid/ready acceptor: one-slot buffer with take-to-drain."""
    width = rng.choice([4, 8])
    name = f"mealy_hs_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input valid,
  input take,
  input [{width - 1}:0] din,
  output wire ready,
  output wire accept,
  output reg full,
  output reg [{width - 1}:0] data_q
);
  assign ready = !full;
  assign accept = valid && ready;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      full <= 1'b0;
    else if (accept)
      full <= 1'b1;
    else if (take)
      full <= 1'b0;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      data_q <= {width}'d0;
    else if (accept)
      data_q <= din;
  end
endmodule
"""
    hints = [
        SvaHint("ready_mealy", consequent="ready == !full",
                message="ready must mirror the empty slot"),
        SvaHint("accept_fills", antecedent="valid && ready", delay=1,
                consequent="full",
                message="an accepted beat must occupy the slot"),
        SvaHint("accept_captures", antecedent="valid && ready", delay=1,
                consequent="data_q == $past(din)",
                message="an accepted beat must capture its data"),
        SvaHint("take_drains", antecedent="full && take", delay=1,
                consequent="!full",
                message="taking the held beat must free the slot"),
        SvaHint("no_spurious_fill", antecedent="!full && !valid", delay=1,
                consequent="!full",
                message="the slot must stay empty without a valid beat"),
    ]
    meta = TemplateMeta(
        family="mealy_handshake",
        params={"width": width},
        summary=f"A Mealy valid/ready acceptor holding one {width}-bit beat "
                f"until taken.",
        behaviour=[
            "ready combinationally advertises the empty slot",
            "accept fires the cycle valid meets ready (Mealy output)",
            "an accepted beat is captured into data_q and holds the slot",
            "take releases the slot for the next beat",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


FSM_TEMPLATES = {
    "moore_handshake": make_moore_handshake,
    "mealy_handshake": make_mealy_handshake,
}
