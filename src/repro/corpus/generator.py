"""Seeded corpus generation.

``CorpusGenerator`` samples template instances, canonicalizes their source
through the writer (so every line-number annotation downstream is stable)
and verifies each golden design compiles.  It deliberately over-samples the
wide families a little so all five code-length bins of the paper's Table II
are populated.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.corpus.meta import DesignSeed
from repro.corpus.registry import TEMPLATE_FAMILIES, make_instance
from repro.verilog.compile import compile_source
from repro.verilog.writer import write_module

# Sampling weights: wide families weighted up to populate the long bins.
_FAMILY_WEIGHTS = {
    "register_file": 2.0,
    "mux_tree": 2.0,
    "pipeline": 2.0,
    "multichannel": 1.5,
}


class CorpusGenerationError(Exception):
    """Raised when a template produced an invalid golden design."""


class CorpusGenerator:
    """Deterministic stream of canonical golden designs."""

    def __init__(self, seed: int = 0,
                 families: Optional[List[str]] = None):
        self.rng = random.Random(seed)
        self.families = families or sorted(TEMPLATE_FAMILIES)
        self.weights = [_FAMILY_WEIGHTS.get(f, 1.0) for f in self.families]

    def generate_one(self, family: Optional[str] = None) -> DesignSeed:
        """One canonical, compile-checked design."""
        if family is None:
            family = self.rng.choices(self.families, weights=self.weights)[0]
        seed = make_instance(family, self.rng)
        result = compile_source(seed.source)
        if not result.ok:
            raise CorpusGenerationError(
                f"template {family!r} produced invalid source for "
                f"{seed.name}:\n{result.failure_summary()}")
        canonical = write_module(result.module)
        return DesignSeed(seed.name, canonical, seed.meta)

    def generate(self, count: int) -> List[DesignSeed]:
        return [self.generate_one() for _ in range(count)]

    def stream(self) -> Iterator[DesignSeed]:
        while True:
            yield self.generate_one()
