"""Seeded corpus generation as engine work units.

``CorpusGenerator`` samples template instances, canonicalizes their source
through the writer (so every line-number annotation downstream is stable)
and verifies each golden design compiles.  It deliberately over-samples
the wide families a little so all five code-length bins of the paper's
Table II are populated.

Every design is an independent work unit: its RNG stream derives from
``(global_seed, "corpus", design_id, "template")`` via
:func:`repro.engine.derive_seed`, never from a shared sequential stream —
so :meth:`CorpusGenerator.generate` can fan out across an
:class:`repro.engine.ExecutionEngine` worker pool and stay byte-identical
to a serial run, making the corpus a real parallel node of the datagen
stage graph instead of a serial pre-pass.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.corpus.meta import DesignSeed
from repro.corpus.registry import TEMPLATE_FAMILIES, make_instance
from repro.engine.rng import derive_seed
from repro.store import unit_memo_key
from repro.verilog.compile import compile_source
from repro.verilog.writer import write_module

STAGE_NAME = "corpus"

#: Default sampling weights: wide families weighted up to populate the
#: long code-length bins.  Families absent here weigh 1.0.
DEFAULT_FAMILY_WEIGHTS = {
    "register_file": 2.0,
    "mux_tree": 2.0,
    "pipeline": 2.0,
    "multichannel": 1.5,
}


class CorpusGenerationError(Exception):
    """Raised when a template produced an invalid golden design."""


def resolve_families(families: Optional[Sequence[str]] = None,
                     weights: Optional[Dict[str, float]] = None,
                     ) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
    """Validate a family selection against the registry.

    Returns ``(names, weights)`` aligned tuples.  ``families=None`` means
    every registered family; an explicitly empty selection is an error.
    Raises ``ValueError`` naming the first unregistered family (an
    unknown name would otherwise silently contribute zero designs),
    duplicate selection, or non-positive weight.  ``weights`` overrides
    :data:`DEFAULT_FAMILY_WEIGHTS` per family and may only name selected
    families.
    """
    if families is None:
        names = tuple(sorted(TEMPLATE_FAMILIES))
    else:
        names = tuple(families)
        if not names:
            raise ValueError(
                "template family selection is empty; pass None to sample "
                "from every registered family")
    for name in names:
        if name not in TEMPLATE_FAMILIES:
            raise ValueError(
                f"unknown template family {name!r}; known: "
                f"{', '.join(sorted(TEMPLATE_FAMILIES))}")
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate template family selection: {dupes}")
    weights = dict(weights or {})
    for name, weight in weights.items():
        if name not in TEMPLATE_FAMILIES:
            raise ValueError(
                f"family_weights names unknown template family {name!r}")
        if name not in names:
            raise ValueError(
                f"family_weights names unselected family {name!r} "
                f"(selected: {', '.join(names)})")
        if not isinstance(weight, (int, float)) or isinstance(weight, bool) \
                or not weight > 0:
            raise ValueError(
                f"family weight for {name!r} must be a number > 0, "
                f"got {weight!r}")
    resolved = tuple(
        float(weights.get(name, DEFAULT_FAMILY_WEIGHTS.get(name, 1.0)))
        for name in names)
    return names, resolved


@dataclass(frozen=True)
class CorpusTask:
    """One per-design generation unit (picklable for the process backend).

    ``design_id`` is the unit's stable identity in the derived-seed
    namespace: two tasks with the same id replay the same stream no
    matter which worker runs them, or in which order.
    """

    global_seed: int
    design_id: str
    families: Tuple[str, ...]
    weights: Tuple[float, ...]
    family: Optional[str] = None  # forced family (skips sampling)


def corpus_unit(task: CorpusTask) -> DesignSeed:
    """Pure per-design work: sample family, instantiate, compile, canonicalize."""
    rng = random.Random(derive_seed(task.global_seed, STAGE_NAME,
                                    task.design_id, "template"))
    family = task.family
    if family is None:
        family = rng.choices(list(task.families),
                             weights=list(task.weights))[0]
    seed = make_instance(family, rng)
    result = compile_source(seed.source)
    if not result.ok:
        raise CorpusGenerationError(
            f"template {family!r} produced invalid source for "
            f"{seed.name}:\n{result.failure_summary()}")
    canonical = write_module(result.module)
    return DesignSeed(seed.name, canonical, seed.meta)


class CorpusGenerator:
    """Deterministic stream of canonical golden designs.

    ``families`` restricts sampling to a subset of the registry and
    ``weights`` overrides per-family sampling weights; both are validated
    eagerly (see :func:`resolve_families`).  Designs are numbered
    ``design_000000, design_000001, ...`` — the number is the unit id the
    per-design seed derives from, so a batch :meth:`generate` and a
    one-at-a-time :meth:`generate_one` walk produce identical designs.
    """

    def __init__(self, seed: int = 0,
                 families: Optional[Sequence[str]] = None,
                 weights: Optional[Dict[str, float]] = None):
        self.seed = seed
        self.families, self.weights = resolve_families(families, weights)
        self._next_index = 0

    def _task(self, index: int, family: Optional[str] = None) -> CorpusTask:
        return CorpusTask(global_seed=self.seed,
                          design_id=f"design_{index:06d}",
                          families=self.families, weights=self.weights,
                          family=family)

    def generate_one(self, family: Optional[str] = None) -> DesignSeed:
        """One canonical, compile-checked design."""
        task = self._task(self._next_index, family)
        self._next_index += 1
        return corpus_unit(task)

    def generate(self, count: int, engine=None) -> List[DesignSeed]:
        """``count`` designs; fans out over ``engine`` when given.

        Any :class:`repro.engine.ExecutionEngine` backend returns the
        exact designs of a serial run: each task's stream derives only
        from its ``design_id`` and ``engine.map`` preserves input order.
        """
        start = self._next_index
        self._next_index += count
        tasks = [self._task(index) for index in range(start, start + count)]
        if engine is None:
            return [corpus_unit(task) for task in tasks]
        return engine.map(
            corpus_unit, tasks, stage=STAGE_NAME,
            memo_key=lambda task: unit_memo_key(
                STAGE_NAME, task.design_id, engine.memo_context,
                task.global_seed))

    def stream(self) -> Iterator[DesignSeed]:
        while True:
            yield self.generate_one()
