"""Idiom-bridging template families.

The paper's pretraining corpus (109k real-world Verilog files) covers the
idioms that RTLLM-style hand-written designs use; a 22-family synthetic
corpus does not, which is the main driver of the surrogate's human-
benchmark domain shift (EXPERIMENTS.md §RQ3).  These families close the
largest idiom gaps measured there:

- ``toggle_flop``      — phase/parity toggles (``q <= !q`` under enables);
- ``operand_pipeline`` — operand registration + concat-padded arithmetic
                         (``sum <= {1'b0, a_q} + {1'b0, b_q}``);
- ``byte_pairing``     — lock-and-pair width conversion;
- ``history_window``   — shifted history with pattern matching.

They are ordinary corpus citizens: golden designs with validated SVA
hints, mutated and split like every other family.
"""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_toggle_flop(rng: random.Random) -> DesignSeed:
    """Enable-gated toggle flip-flop with a phase output."""
    name = f"toggle_{design_uid(rng)}"
    with_clear = rng.choice([0, 1])
    clear_port = "  input clr,\n" if with_clear else ""
    clear_branch = "    else if (clr)\n      phase <= 1'b0;\n" if with_clear else ""
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input en,
{clear_port}  output reg phase,
  output wire level
);
  assign level = phase && en;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      phase <= 1'b0;
{clear_branch}    else if (en)
      phase <= !phase;
  end
endmodule
"""
    guard = "en" if not with_clear else "en && !clr"
    hints = [
        SvaHint("phase_toggles", antecedent=guard, delay=1,
                consequent="phase == !$past(phase)",
                message="an enabled cycle must flip the phase"),
        SvaHint("phase_holds", antecedent=f"!({guard or 'en'})"
                if with_clear else "!en",
                delay=1,
                consequent="phase == $past(phase)" if not with_clear
                else "phase == $past(phase) || phase == 1'b0",
                message="the phase only moves when enabled"),
    ]
    meta = TemplateMeta(
        family="toggle_flop",
        params={"with_clear": with_clear},
        summary="An enable-gated toggle flip-flop"
                + (" with synchronous clear." if with_clear else "."),
        behaviour=[
            "each enabled clock inverts phase",
            "disabled cycles hold the phase",
        ] + (["clr forces the phase low and wins over en"] if with_clear
             else []),
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_operand_pipeline(rng: random.Random) -> DesignSeed:
    """Two-stage arithmetic pipeline: operand registration then a
    carry-extended sum/difference — the hand-written adder idiom."""
    width = rng.choice([4, 8])
    op = rng.choice(["+", "-"])
    tag = "add" if op == "+" else "sub"
    name = f"pipe_{tag}_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input en,
  output reg [{width}:0] result,
  output reg valid
);
  reg [{width - 1}:0] a_q;
  reg [{width - 1}:0] b_q;
  reg en_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      a_q <= {width}'d0;
      b_q <= {width}'d0;
      en_q <= 1'b0;
    end
    else begin
      a_q <= a;
      b_q <= b;
      en_q <= en;
    end
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      result <= {width + 1}'d0;
      valid <= 1'b0;
    end
    else begin
      result <= {{1'b0, a_q}} {op} {{1'b0, b_q}};
      valid <= en_q;
    end
  end
endmodule
"""
    hints = [
        SvaHint("stage2_math", antecedent="en_q", delay=1,
                consequent=f"result == $past({{1'b0, a_q}} {op} {{1'b0, b_q}})",
                message="stage 2 must combine the stage-1 operands"),
        SvaHint("end_to_end", antecedent="en", delay=2,
                consequent=f"result == $past({{1'b0, a}} {op} {{1'b0, b}}, 2)",
                message="the pipeline must combine the sampled operands"),
        SvaHint("valid_latency", antecedent="en", delay=2, consequent="valid",
                message="valid must emerge after two stages"),
    ]
    meta = TemplateMeta(
        family="operand_pipeline",
        params={"width": width, "subtract": int(op == "-")},
        summary=f"A two-stage pipelined {width}-bit "
                f"{'subtractor' if op == '-' else 'adder'} with carry "
                f"extension and a valid qualifier.",
        behaviour=[
            "stage 1 registers the operands and the enable",
            f"stage 2 registers the {width + 1}-bit {'difference' if op == '-' else 'sum'}",
            "valid tracks en with two cycles of latency",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_byte_pairing(rng: random.Random) -> DesignSeed:
    """Lock-and-pair width doubler — the hand-written width_8to16 idiom."""
    width = rng.choice([4, 8])
    name = f"pair_{width}to{2 * width}_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input valid_in,
  input [{width - 1}:0] data_in,
  output reg valid_out,
  output reg [{2 * width - 1}:0] data_out
);
  reg half_full;
  reg [{width - 1}:0] data_lock;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      half_full <= 1'b0;
    else if (valid_in)
      half_full <= !half_full;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      data_lock <= {width}'d0;
    else if (valid_in && !half_full)
      data_lock <= data_in;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      data_out <= {2 * width}'d0;
      valid_out <= 1'b0;
    end
    else if (valid_in && half_full) begin
      data_out <= {{data_lock, data_in}};
      valid_out <= 1'b1;
    end
    else
      valid_out <= 1'b0;
  end
endmodule
"""
    hints = [
        SvaHint("pair_completes", antecedent="valid_in && half_full", delay=1,
                consequent="valid_out",
                message="the second element of a pair must emit a word"),
        SvaHint("low_half", antecedent="valid_in && half_full", delay=1,
                consequent=f"data_out[{width - 1}:0] == $past(data_in)",
                message="the second element must land in the low half"),
        SvaHint("phase_flips", antecedent="valid_in", delay=1,
                consequent="half_full == !$past(half_full)",
                message="every valid element must flip the pairing phase"),
        SvaHint("lock_first", antecedent="valid_in && !half_full", delay=1,
                consequent="data_lock == $past(data_in)",
                message="the first element must be locked"),
    ]
    meta = TemplateMeta(
        family="byte_pairing",
        params={"width": width},
        summary=f"A {width}-to-{2 * width} bit width doubler pairing "
                f"consecutive valid elements, first element in the high "
                f"half.",
        behaviour=[
            "odd-numbered valid elements are locked",
            "even-numbered elements complete a word and pulse valid_out",
            "half_full tracks the pairing phase",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_history_window(rng: random.Random) -> DesignSeed:
    """Shifted bit-history with a registered pattern match — the
    hand-written pulse_detect idiom."""
    depth = rng.choice([2, 3])
    pattern = rng.randrange(1, (1 << depth) - 1)
    name = f"history_{depth}_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input sig,
  output reg matched,
  output reg [{depth - 1}:0] history
);
  wire hit_now;
  assign hit_now = history == {depth}'d{pattern} && !sig;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      history <= {depth}'d0;
    else
      history <= {{history[{depth - 2}:0], sig}};
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      matched <= 1'b0;
    else
      matched <= hit_now;
  end
endmodule
"""
    hints = [
        SvaHint("history_shifts",
                consequent=f"history[0] == $past(sig)",
                message="the newest sample must land in history[0]"),
        SvaHint("match_fires",
                antecedent=f"history == {depth}'d{pattern} && !sig", delay=1,
                consequent="matched",
                message="a completed pattern must be flagged"),
        SvaHint("match_quiet",
                antecedent=f"!(history == {depth}'d{pattern} && !sig)",
                delay=1, consequent="!matched",
                message="no flag without a completed pattern"),
    ]
    meta = TemplateMeta(
        family="history_window",
        params={"depth": depth, "pattern": pattern},
        summary=f"A {depth}-bit serial history register with a registered "
                f"match for pattern {pattern:0{depth}b} followed by a low "
                f"sample.",
        behaviour=[
            "history shifts sig in each clock",
            f"hit_now marks history == {pattern} with sig low",
            "matched registers hit_now with one cycle of delay",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


IDIOM_TEMPLATES = {
    "toggle_flop": make_toggle_flop,
    "operand_pipeline": make_operand_pipeline,
    "byte_pairing": make_byte_pairing,
    "history_window": make_history_window,
}
