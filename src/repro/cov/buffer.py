"""Bounded per-design retention of coverage reports — ``GET /covz``.

The serving layer records each solved request's coverage report here
(keyed by design name); the buffer keeps one merged report per design
for the ``max_designs`` most recently updated designs, the same bounded-
retention discipline as :class:`repro.obs.trace.TraceBuffer`.  The fleet
router folds backend ``/covz`` payloads into its own snapshot with
:func:`merge_covz_payloads`.

Like tracing, this is a pure execution concern: nothing here enters
content keys, digests or response bytes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.cov.collector import merge_reports

__all__ = [
    "CoverageBuffer",
    "buffer",
    "configure",
    "merge_covz_payloads",
    "reset",
]


class CoverageBuffer:
    """Keeps one merged coverage report per design, LRU-bounded.

    ``record`` merges a new report into the design's retained one (counts
    add, covered bits max — see
    :func:`repro.cov.collector.merge_reports`) and refreshes its
    recency; the least recently updated design is evicted past
    ``max_designs``.
    """

    def __init__(self, max_designs: int = 64):
        if not isinstance(max_designs, int) or isinstance(max_designs, bool) \
                or max_designs < 1:
            raise ValueError(
                f"max_designs must be an integer >= 1, got {max_designs!r}")
        self.max_designs = max_designs
        self.dropped = 0
        self.recorded = 0
        self._reports: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()

    def record(self, report: Dict[str, object]) -> None:
        design = report.get("design")
        if not isinstance(design, str) or not design:
            return
        with self._lock:
            existing = self._reports.pop(design, None)
            if existing is None:
                merged = merge_reports([report])
            else:
                merged = merge_reports([existing, report])
            self._reports[design] = merged
            self.recorded += 1
            while len(self._reports) > self.max_designs:
                self._reports.popitem(last=False)
                self.dropped += 1

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The ``/covz`` payload: most recently updated designs first."""
        with self._lock:
            designs = [dict(report)
                       for report in reversed(self._reports.values())]
            recorded = self.recorded
            dropped = self.dropped
        if limit is not None and limit >= 0:
            designs = designs[:limit]
        return {
            "designs": designs,
            "dropped": dropped,
            "recorded": recorded,
            "retained": len(designs),
        }

    def clear(self) -> None:
        with self._lock:
            self._reports.clear()
            self.dropped = 0
            self.recorded = 0


def merge_covz_payloads(payloads: List[Dict[str, object]],
                        limit: Optional[int] = None) -> Dict[str, object]:
    """Fold several ``/covz`` payloads (router + backends) into one.

    Reports for the same design merge (counts add, covered bits max);
    ``recorded`` / ``dropped`` sum.  Order is first sighting, so the
    local buffer's recency ordering wins for designs it retains.
    """
    by_design: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    recorded = 0
    dropped = 0
    for payload in payloads:
        if not isinstance(payload, dict):
            continue
        recorded += int(payload.get("recorded", 0) or 0)
        dropped += int(payload.get("dropped", 0) or 0)
        for report in payload.get("designs") or []:
            design = report.get("design")
            if not isinstance(design, str):
                continue
            existing = by_design.get(design)
            if existing is None:
                by_design[design] = merge_reports([report])
            else:
                by_design[design] = merge_reports([existing, report])
    designs = list(by_design.values())
    if limit is not None and limit >= 0:
        designs = designs[:limit]
    return {
        "designs": designs,
        "dropped": dropped,
        "recorded": recorded,
        "retained": len(designs),
    }


_BUFFER = CoverageBuffer()


def buffer() -> CoverageBuffer:
    """The process-global coverage buffer behind ``GET /covz``."""
    return _BUFFER


def configure(max_designs: Optional[int] = None) -> None:
    """Swap in a fresh, empty buffer (optionally resized)."""
    global _BUFFER
    _BUFFER = CoverageBuffer(
        max_designs=max_designs if max_designs is not None
        else _BUFFER.max_designs)


def reset() -> None:
    """Drop every retained report (tests and benches start clean)."""
    _BUFFER.clear()
