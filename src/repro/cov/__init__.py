"""Coverage & assertion-quality telemetry (see :mod:`repro.cov.collector`).

Public surface:

- :class:`CoverageSink` — per-design collector both simulator tiers feed
  byte-identically; attach as ``simulator.cov``.
- :func:`merge_reports` / :func:`accumulate_totals` /
  :func:`coverage_counters` — report aggregation and the ``coverage``
  provider of the engine counter-delta protocol.
- :class:`CoverageBuffer` with :func:`buffer` / :func:`configure` /
  :func:`reset` and :func:`merge_covz_payloads` — the bounded retention
  behind ``GET /covz`` and its fleet-wide merge.
- :func:`new_quality` / ``QUALITY_KEYS`` — the per-assertion quality
  counter record the SVA monitor fills in.
"""

from repro.cov.buffer import (
    CoverageBuffer,
    buffer,
    configure,
    merge_covz_payloads,
    reset,
)
from repro.cov.collector import (
    QUALITY_KEYS,
    CoverageSink,
    accumulate_totals,
    coverage_counters,
    merge_reports,
    new_quality,
)

__all__ = [
    "QUALITY_KEYS",
    "CoverageBuffer",
    "CoverageSink",
    "accumulate_totals",
    "buffer",
    "configure",
    "coverage_counters",
    "merge_covz_payloads",
    "merge_reports",
    "new_quality",
    "reset",
]
