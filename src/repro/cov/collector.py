"""Coverage collection shared by both simulation tiers.

A :class:`CoverageSink` attaches to a simulator (``simulator.cov = sink``)
and observes every trace snapshot the run appends:

Collection is **lazy and batched**: the simulator hands :meth:`begin_run`
the run's (shared, growing) snapshot list and the sink stacks runs up
until :meth:`report`, where it walks every accumulated run in one
column-wise pass per signal (with C-speed column extraction and an
identity-set fast path for unchanged columns).  The hot simulation loop
therefore pays nothing per cycle, and early-exited (abandoned) runs are
observed exactly up to the last appended snapshot.

- **toggle coverage** — per-signal bitmasks of observed 0->1 (rise) and
  1->0 (fall) transitions between consecutive snapshots, counted only on
  bits that are known (non-X) on both sides;
- **block coverage** — per-``assign`` / per-``always`` execution counts,
  where "fired" means *some target signal changed value* between
  consecutive snapshots (raw body executions differ between the
  interpreter's fixpoint settle and the compiled tier's single-sweep
  settle, so they can never be the cross-tier currency — observable state
  changes can);
- **assertion quality** — activations, vacuous passes, real passes and
  fails per assertion label, recorded by the SVA monitor
  (:mod:`repro.sva.monitor`) into the ``quality`` dict the BMC driver
  threads through.

Everything is keyed by stable IDs: signal name, ``assign[i]`` /
``comb[i]`` / ``seq[i]`` in design order, assertion label.  Both tiers
produce byte-identical snapshot sequences, so a sink fed by the
interpreter and one fed by a compiled program report **byte-identical
coverage** — the differential suite in ``tests/test_cov.py`` holds this
contract over every corpus family.

Collection is a pure execution knob: it never enters content keys,
digests or response bytes when off.  Process-wide totals feed the
``coverage`` provider of the engine counter-delta protocol (like
``solve_profile``), so worker-pool runs aggregate into
``bundle.stats["coverage"]`` and ``/metricsz``.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, List, Optional, Tuple

from repro.engine import metrics
from repro.sim.simulator import _target_name_list
from repro.verilog import ast
from repro.verilog.elaborator import Design, _walk_stmts

#: Quality-counter keys, in report order.
QUALITY_KEYS = ("activations", "vacuous", "real_passes", "fails")

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - older interpreters
    def _popcount(value: int) -> int:
        return bin(value).count("1")


def new_quality() -> Dict[str, int]:
    """A fresh per-assertion quality counter record."""
    return {key: 0 for key in QUALITY_KEYS}


class CoverageSink:
    """Per-design coverage accumulator observing trace snapshots.

    Build with :meth:`for_design`, attach as ``simulator.cov``, and the
    simulator calls ``begin_run(trace.snapshots)`` at the start of each
    stimulus, handing over the run's snapshot list (which the run then
    grows in place).  Runs stack up and are all processed in one batched
    column-wise pass at :meth:`report` — toggles never span stimulus
    boundaries because each run boundary resets the walk, and the first
    snapshot of a run records nothing (it has no predecessor).
    """

    __slots__ = ("design_name", "_names", "_widths", "_masks", "_blocks",
                 "_pending", "_rise", "_fall",
                 "block_fires", "runs", "cycles", "toggle_events")

    def __init__(self, design_name: str, signals, blocks):
        self.design_name = design_name
        self._names: Tuple[str, ...] = tuple(name for name, _ in signals)
        self._widths: Tuple[int, ...] = tuple(width for _, width in signals)
        self._masks: Tuple[int, ...] = tuple((1 << width) - 1
                                             for _, width in signals)
        #: ((block_id, (signal_index, ...)), ...) in design order.
        self._blocks = blocks
        #: Stacked ``[snapshots, done]`` entries, one per begin_run();
        #: ``snapshots`` is shared with the simulator's Trace and
        #: ``done`` marks the processed prefix, so a mid-run report()
        #: sees everything appended so far and the newest run can keep
        #: growing afterwards.
        self._pending: List[list] = []
        self._rise: List[int] = [0] * len(self._names)
        self._fall: List[int] = [0] * len(self._names)
        self.block_fires: List[int] = [0] * len(blocks)
        self.runs = 0
        self.cycles = 0
        self.toggle_events = 0

    @classmethod
    def for_design(cls, design: Design) -> "CoverageSink":
        """Precompute signal order and block target indices once."""
        names = sorted(design.symbols)
        index = {name: i for i, name in enumerate(names)}
        signals = [(name, design.symbols[name].width) for name in names]

        def target_indices(targets) -> Tuple[int, ...]:
            seen = []
            for name in targets:
                i = index.get(name)
                if i is not None and i not in seen:
                    seen.append(i)
            return tuple(seen)

        blocks = []
        for i, item in enumerate(design.assigns):
            blocks.append((f"assign[{i}]",
                           target_indices(_target_name_list(item.target))))
        for kind, items in (("comb", design.comb_blocks),
                            ("seq", design.seq_blocks)):
            for i, block in enumerate(items):
                targets: List[str] = []
                for stmt in _walk_stmts(block.body):
                    if isinstance(stmt, ast.Assignment):
                        targets.extend(_target_name_list(stmt.target))
                blocks.append((f"{kind}[{i}]", target_indices(targets)))
        return cls(design.name, signals, tuple(blocks))

    # -- simulator protocol ----------------------------------------------

    def begin_run(self, snapshots: List[Dict]) -> None:
        """Start a new stimulus run observing ``snapshots`` (the run's
        trace snapshot list, typically still empty and grown in place by
        the simulator).  Runs stack; processing is deferred to report."""
        self._pending.append([snapshots, 0])
        self.runs += 1

    def _flush(self) -> None:
        """Process every pending run's unseen snapshots column-wise.

        All runs are concatenated into one window with run boundaries in
        ``starts`` (where the pairwise walk resets its predecessor), so
        each signal's column is extracted exactly once at C speed and
        columns that never change object identity are skipped outright.
        """
        pending = self._pending
        if not pending:
            return
        window: List[Dict] = []
        starts = set()
        for entry in pending:
            snaps, done = entry
            n = len(snaps)
            if n <= done:
                continue
            self.cycles += n - done
            entry[1] = n
            starts.add(len(window))
            if done:
                # Resumed run: its last processed snapshot is the
                # predecessor for the fresh tail.
                window.append(snaps[done - 1])
                window.extend(snaps[done:])
            else:
                window.extend(snaps)
        # Keep only the newest run: it may still be growing in place.
        del pending[:-1]
        total = len(window)
        if total < 2:
            return
        toggles = self.toggle_events
        rise_acc = self._rise
        fall_acc = self._fall
        #: signal index -> set of window indices where its value changed
        #: (value-unequal, not merely a fresh object) vs the previous
        #: snapshot of the same run.
        changed: Dict[int, set] = {}
        span = range(1, total)
        for i, name in enumerate(self._names):
            col = list(map(itemgetter(name), window))
            if len(set(map(id, col))) == 1:
                continue
            mask = self._masks[i]
            prev = col[0]
            rise = rise_acc[i]
            fall = fall_acc[i]
            hits = None
            for k in span:
                cur = col[k]
                if k in starts:
                    prev = cur
                    continue
                if cur is prev:
                    continue
                ov = prev.value
                ox = prev.xmask
                nv = cur.value
                nx = cur.xmask
                prev = cur
                if ov == nv and ox == nx:
                    continue
                if hits is None:
                    hits = changed[i] = set()
                hits.add(k)
                known = ~(ox | nx) & mask
                if known:
                    up = ~ov & nv & known
                    down = ov & ~nv & known
                    if up:
                        rise |= up
                        toggles += _popcount(up)
                    if down:
                        fall |= down
                        toggles += _popcount(down)
            rise_acc[i] = rise
            fall_acc[i] = fall
        self.toggle_events = toggles
        if not changed:
            return
        # A block "fired" on every cycle where any of its target signals
        # changed value: the union of its targets' changed-cycle sets.
        fires = self.block_fires
        for j, (_, targets) in enumerate(self._blocks):
            sets = [changed[i] for i in targets if i in changed]
            if not sets:
                continue
            if len(sets) == 1:
                fires[j] += len(sets[0])
            else:
                fires[j] += len(set.union(*sets))

    # -- reporting -------------------------------------------------------

    def report(self, quality: Optional[Dict[str, Dict[str, int]]] = None
               ) -> Dict[str, object]:
        """A plain, picklable, deterministically ordered coverage report.

        Both tiers serialize this byte-identically (``json.dumps`` with
        ``sort_keys`` is a no-op: keys are inserted sorted).
        """
        self._flush()
        signals = {}
        covered_bits = 0
        total_bits = 0
        for i, name in enumerate(self._names):
            width = self._widths[i]
            both = self._rise[i] & self._fall[i]
            covered = bin(both).count("1")
            covered_bits += covered
            total_bits += width
            signals[name] = {
                "covered_bits": covered,
                "fall_bits": bin(self._fall[i]).count("1"),
                "rise_bits": bin(self._rise[i]).count("1"),
                "width": width,
            }
        blocks = {block_id: self.block_fires[j]
                  for j, (block_id, _) in enumerate(self._blocks)}
        fired = sum(1 for count in self.block_fires if count)
        report = {
            "assertions": {label: dict(sorted(counters.items()))
                           for label, counters
                           in sorted((quality or {}).items())},
            "block_pct": (round(fired / len(blocks), 4) if blocks else 1.0),
            "blocks": blocks,
            "blocks_fired": fired,
            "blocks_total": len(blocks),
            "cycles": self.cycles,
            "design": self.design_name,
            "runs": self.runs,
            "signals": signals,
            "toggle_events": self.toggle_events,
            "toggle_pct": (round(covered_bits / total_bits, 4)
                           if total_bits else 1.0),
        }
        return report


def merge_reports(reports) -> Dict[str, object]:
    """Merge per-design coverage reports that share one design.

    Counts add; toggle bitmasks are gone at this level, so per-signal
    bit counts merge by max (a bit observed covered in either run is
    covered).  Used by the fleet router and by the per-proposal
    validation fallback.
    """
    merged: Optional[Dict[str, object]] = None
    for report in reports:
        if not report:
            continue
        if merged is None:
            merged = {
                "assertions": {label: dict(counters) for label, counters
                               in report["assertions"].items()},
                "block_pct": report["block_pct"],
                "blocks": dict(report["blocks"]),
                "blocks_fired": report["blocks_fired"],
                "blocks_total": report["blocks_total"],
                "cycles": report["cycles"],
                "design": report["design"],
                "runs": report["runs"],
                "signals": {name: dict(stats) for name, stats
                            in report["signals"].items()},
                "toggle_events": report["toggle_events"],
                "toggle_pct": report["toggle_pct"],
            }
            continue
        for label, counters in report["assertions"].items():
            into = merged["assertions"].setdefault(label, new_quality())
            for key, value in counters.items():
                into[key] = into.get(key, 0) + value
        for block_id, count in report["blocks"].items():
            merged["blocks"][block_id] = (
                merged["blocks"].get(block_id, 0) + count)
        for name, stats in report["signals"].items():
            into = merged["signals"].setdefault(name, dict(stats))
            if into is not stats:
                for key in ("covered_bits", "fall_bits", "rise_bits"):
                    into[key] = max(into.get(key, 0), stats[key])
        for key in ("cycles", "runs", "toggle_events"):
            merged[key] += report[key]
        merged["blocks_fired"] = sum(
            1 for count in merged["blocks"].values() if count)
        merged["block_pct"] = (
            round(merged["blocks_fired"] / merged["blocks_total"], 4)
            if merged["blocks_total"] else 1.0)
        total_bits = sum(stats["width"]
                         for stats in merged["signals"].values())
        covered = sum(stats["covered_bits"]
                      for stats in merged["signals"].values())
        merged["toggle_pct"] = (round(covered / total_bits, 4)
                                if total_bits else 1.0)
    if merged is not None:
        merged["assertions"] = {
            label: dict(sorted(counters.items()))
            for label, counters in sorted(merged["assertions"].items())}
        merged["signals"] = dict(sorted(merged["signals"].items()))
        merged["blocks"] = dict(sorted(merged["blocks"].items()))
    return merged or {}


# -- process-wide totals (engine counter-delta provider) ----------------------

_TOTALS: Dict[str, int] = {
    "runs_total": 0,
    "cycles_total": 0,
    "toggles_total": 0,
    "blocks_fired_total": 0,
    "reports_total": 0,
    "activations_total": 0,
    "vacuous_total": 0,
    "real_passes_total": 0,
    "fails_total": 0,
}


def coverage_counters() -> Dict[str, int]:
    """Metrics provider: process-wide coverage collection totals."""
    return dict(_TOTALS)


def accumulate_totals(report: Dict[str, object]) -> None:
    """Fold one finished report into the process-wide totals."""
    _TOTALS["runs_total"] += report.get("runs", 0)
    _TOTALS["cycles_total"] += report.get("cycles", 0)
    _TOTALS["toggles_total"] += report.get("toggle_events", 0)
    _TOTALS["blocks_fired_total"] += report.get("blocks_fired", 0)
    _TOTALS["reports_total"] += 1
    for counters in report.get("assertions", {}).values():
        _TOTALS["activations_total"] += counters.get("activations", 0)
        _TOTALS["vacuous_total"] += counters.get("vacuous", 0)
        _TOTALS["real_passes_total"] += counters.get("real_passes", 0)
        _TOTALS["fails_total"] += counters.get("fails", 0)


metrics.register_provider("coverage", coverage_counters)
