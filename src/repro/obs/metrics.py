"""Unified metrics: counters, gauges, log-bucket histograms, Prometheus text.

A :class:`MetricsRegistry` is an instance-scoped collection of metric
families — each :class:`AssertService`, :class:`AssertHttpServer`, and
:class:`FleetRouter` owns one, so three backends sharing a process (the
``make_fleet`` demo shape) never pollute each other's numbers.  The
``GET /metricsz`` endpoint renders one or more registries with
:func:`render_prometheus`, appending the process-global
:mod:`repro.engine.metrics` provider counters (compile cache, stores,
``solve_profile``) so everything the engine already counts is exposed
without per-call-site glue.

Three metric shapes, all stdlib, all thread-safe:

- **Counters** — monotonic; direct (``inc()``), labelled families
  (``labels(code="200").inc()``), or callback-backed (read an existing
  counter attribute at render time — no double bookkeeping).
- **Gauges** — point-in-time; direct (``set()``) or callback-backed
  (queue depth, inflight).
- **Histograms** — fixed log-spaced buckets (powers of two from 0.5 ms
  to ~65 s) rendered as cumulative Prometheus ``_bucket``/``_sum``/
  ``_count`` series, from which p50/p95/p99 are derivable by any
  scraper; :meth:`Histogram.quantile` derives them locally the same way.

The exposition follows the Prometheus text format 0.0.4
(``# HELP`` / ``# TYPE`` comments, ``name{label="value"} value``
samples).  :func:`parse_prometheus_text` reads it back and
:func:`merge_expositions` sums samples across expositions by identical
``name{labels}`` — that pair is how the fleet router serves one
``/metricsz`` for the whole fleet: fetch each backend's text, merge,
append its own.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

__all__ = [
    "CallbackCounter",
    "CallbackGauge",
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_expositions",
    "parse_prometheus_text",
    "provider_exposition",
    "render_prometheus",
]

#: Log-spaced (powers of two) histogram bounds in seconds: 0.5 ms .. ~65 s.
#: Fixed for every histogram so fleet-level merges sum bucket-for-bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    0.0005 * (2.0 ** i) for i in range(18))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: ``(labels, value)`` rows as rendered/parsed; labels are a sorted tuple
#: of ``(name, value)`` pairs so they hash and compare structurally.
Sample = Tuple[Tuple[Tuple[str, str], ...], float]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer() \
            and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


class _Family:
    """Base: a named metric family rendering to exposition lines."""

    kind = "untyped"

    def __init__(self, name: str, help_: str):
        self.name = _check_name(name)
        self.help = help_

    def samples(self) -> List[Tuple[str, Sample]]:
        """``(sample_name, (labels, value))`` rows, family order."""
        raise NotImplementedError

    def render(self, out: List[str]) -> None:
        out.append(f"# HELP {self.name} {self.help}")
        out.append(f"# TYPE {self.name} {self.kind}")
        for sample_name, (labels, value) in self.samples():
            out.append(
                f"{sample_name}{_render_labels(labels)}"
                f" {_format_value(value)}")


class Counter(_Family):
    """Monotonic counter incremented at the call site."""

    kind = "counter"

    def __init__(self, name: str, help_: str):
        super().__init__(name, help_)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, Sample]]:
        return [(self.name, ((), self.value))]


class CounterFamily(_Family):
    """Labelled counters: ``family.labels(code="200").inc()``.

    Children are created lazily per distinct label-value tuple and
    retained for the registry's lifetime (label cardinality is the
    caller's problem — keep it to status codes, not request ids).
    """

    kind = "counter"

    def __init__(self, name: str, help_: str, label_names: Sequence[str]):
        super().__init__(name, help_)
        if not label_names:
            raise ValueError("CounterFamily needs at least one label name")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.label_names = tuple(label_names)
        self._children: "OrderedDict[Tuple[str, ...], Counter]" = \
            OrderedDict()
        self._lock = threading.Lock()

    def labels(self, **labels: str) -> Counter:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = Counter(self.name, self.help)
            return child

    def samples(self) -> List[Tuple[str, Sample]]:
        with self._lock:
            children = list(self._children.items())
        rows: List[Tuple[str, Sample]] = []
        for key, child in children:
            labels = tuple(sorted(zip(self.label_names, key)))
            rows.append((self.name, (labels, child.value)))
        return rows


class CallbackCounter(_Family):
    """Counter whose value is read from existing bookkeeping at render
    time — the bridge from ``ServiceStats``-style attributes into the
    exposition without maintaining the number twice."""

    kind = "counter"

    def __init__(self, name: str, help_: str, callback: Callable[[], float]):
        super().__init__(name, help_)
        self._callback = callback

    def samples(self) -> List[Tuple[str, Sample]]:
        return [(self.name, ((), float(self._callback())))]


class Gauge(_Family):
    """Point-in-time value set at the call site."""

    kind = "gauge"

    def __init__(self, name: str, help_: str):
        super().__init__(name, help_)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, Sample]]:
        return [(self.name, ((), self.value))]


class CallbackGauge(_Family):
    """Gauge sampled from a callable at render time (queue depth etc.)."""

    kind = "gauge"

    def __init__(self, name: str, help_: str, callback: Callable[[], float]):
        super().__init__(name, help_)
        self._callback = callback

    def samples(self) -> List[Tuple[str, Sample]]:
        return [(self.name, ((), float(self._callback())))]


class Histogram(_Family):
    """Fixed-bucket histogram with Prometheus cumulative exposition.

    Buckets are log-spaced and shared by default across every histogram
    (:data:`DEFAULT_BUCKETS`), so fleet aggregation can sum buckets
    bucket-for-bucket.  Quantiles interpolate linearly within the
    containing bucket, the same estimate ``histogram_quantile`` makes.
    """

    kind = "histogram"

    def __init__(self, name: str, help_: str,
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(name, help_)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds) \
                or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be ascending and unique")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) of observed values, in the
        observed unit.  Values beyond the last bound clamp to it."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if idx >= len(self.bounds):
                    return self.bounds[-1]
                upper = self.bounds[idx]
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                if bucket_count == 0:  # pragma: no cover - defensive
                    return upper
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]  # pragma: no cover - unreachable

    def samples(self) -> List[Tuple[str, Sample]]:
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total = self._count
        rows: List[Tuple[str, Sample]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            rows.append((f"{self.name}_bucket",
                         ((("le", _format_value(bound)),), float(cumulative))))
        rows.append((f"{self.name}_bucket", ((("le", "+Inf"),), float(total))))
        rows.append((f"{self.name}_sum", ((), total_sum)))
        rows.append((f"{self.name}_count", ((), float(total))))
        return rows


class _ProviderFamily(_Family):
    """A dict-valued callback rendered as one counter per key, the key
    suffixed onto ``prefix`` — how engine provider snapshots and other
    pre-existing counter dicts surface wholesale."""

    kind = "counter"

    def __init__(self, prefix: str, help_: str,
                 callback: Callable[[], Mapping[str, float]]):
        super().__init__(prefix, help_)
        self._callback = callback

    def samples(self) -> List[Tuple[str, Sample]]:
        rows: List[Tuple[str, Sample]] = []
        try:
            values = self._callback()
        except Exception:  # pragma: no cover - a provider must not 500 /metricsz
            return rows
        for key in sorted(values):
            name = f"{self.name}_{key}"
            if not _NAME_RE.match(name):
                continue
            rows.append((name, ((), float(values[key]))))
        return rows

    def render(self, out: List[str]) -> None:
        # One HELP/TYPE block per derived sample name.
        for sample_name, (labels, value) in self.samples():
            out.append(f"# HELP {sample_name} {self.help}")
            out.append(f"# TYPE {sample_name} {self.kind}")
            out.append(
                f"{sample_name}{_render_labels(labels)}"
                f" {_format_value(value)}")


class MetricsRegistry:
    """An ordered, named collection of metric families.

    Re-registering a name returns the existing family when the shape
    matches (idempotent wiring) and raises when it does not.
    """

    def __init__(self):
        self._families: "OrderedDict[str, _Family]" = OrderedDict()
        self._lock = threading.Lock()

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(
                        f"metric {family.name!r} already registered as "
                        f"{type(existing).__name__}")
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help_: str) -> Counter:
        return self._register(Counter(name, help_))

    def counter_family(self, name: str, help_: str,
                       label_names: Sequence[str]) -> CounterFamily:
        return self._register(CounterFamily(name, help_, label_names))

    def counter_callback(self, name: str, help_: str,
                         callback: Callable[[], float]) -> CallbackCounter:
        return self._register(CallbackCounter(name, help_, callback))

    def gauge(self, name: str, help_: str) -> Gauge:
        return self._register(Gauge(name, help_))

    def gauge_callback(self, name: str, help_: str,
                       callback: Callable[[], float]) -> CallbackGauge:
        return self._register(CallbackGauge(name, help_, callback))

    def histogram(self, name: str, help_: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(Histogram(name, help_, buckets))

    def provider(self, prefix: str, help_: str,
                 callback: Callable[[], Mapping[str, float]]
                 ) -> _ProviderFamily:
        family = self._register(_ProviderFamily(prefix, help_, callback))
        return family  # type: ignore[return-value]

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        out: List[str] = []
        for family in self.families():
            family.render(out)
        return "\n".join(out) + "\n" if out else ""


# -- process-global provider section -------------------------------------------


def provider_exposition() -> str:
    """The :mod:`repro.engine.metrics` provider snapshot as counters.

    Each provider key renders as ``repro_<provider>_<key>``; the values
    are this process's live counters (compile cache, stores,
    ``solve_profile``).  Imported lazily so :mod:`repro.obs` stays
    importable on its own.
    """
    from repro.engine import metrics as engine_metrics

    out: List[str] = []
    snapshot = engine_metrics.snapshot()
    for provider in sorted(snapshot):
        for key in sorted(snapshot[provider]):
            name = f"repro_{provider}_{key}"
            if not _NAME_RE.match(name):
                continue
            out.append(f"# HELP {name} Engine metrics provider counter.")
            out.append(f"# TYPE {name} counter")
            out.append(f"{name} {_format_value(float(snapshot[provider][key]))}")
    return "\n".join(out) + "\n" if out else ""


def render_prometheus(registries: Iterable[MetricsRegistry],
                      include_providers: bool = True) -> str:
    """Render registries (plus, by default, the engine provider section)
    into one Prometheus text 0.0.4 exposition."""
    parts = [registry.render() for registry in registries]
    if include_providers:
        parts.append(provider_exposition())
    return "".join(part for part in parts if part)


# -- parsing and fleet-level merging -------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"') \
        .replace("\\\\", "\\")


def parse_prometheus_text(text: str) -> "ParsedExposition":
    """Parse a text exposition; raises ``ValueError`` on malformed lines.

    Strict enough to serve as the format gate in tests, and the parsing
    half of the router's fleet-wide ``/metricsz`` merge.
    """
    types: "OrderedDict[str, str]" = OrderedDict()
    helps: Dict[str, str] = {}
    samples: "OrderedDict[Tuple[str, Tuple[Tuple[str, str], ...]], float]" \
        = OrderedDict()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {line_number}: malformed TYPE: {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {line_number}: malformed HELP: {raw!r}")
            helps[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: malformed sample: {raw!r}")
        labels_text = match.group("labels")
        labels: Tuple[Tuple[str, str], ...] = ()
        if labels_text:
            parsed = _LABEL_RE.findall(labels_text)
            leftover = _LABEL_RE.sub("", labels_text).replace(",", "").strip()
            if leftover:
                raise ValueError(
                    f"line {line_number}: malformed labels: {raw!r}")
            labels = tuple(sorted(
                (name, _unescape_label(value)) for name, value in parsed))
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {line_number}: malformed value: {raw!r}") from None
        key = (match.group("name"), labels)
        samples[key] = samples.get(key, 0.0) + value
    return ParsedExposition(types=types, helps=helps, samples=samples)


class ParsedExposition:
    """Parsed exposition: type/help per family, value per sample key."""

    __slots__ = ("types", "helps", "samples")

    def __init__(self, types: "OrderedDict[str, str]",
                 helps: Dict[str, str],
                 samples: "OrderedDict[Tuple[str, Tuple[Tuple[str, str], ...]], float]"):
        self.types = types
        self.helps = helps
        self.samples = samples

    def value(self, name: str, **labels: str) -> Optional[float]:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples.get(key)

    def render(self) -> str:
        # Group samples by family (longest matching TYPE name: a
        # histogram's _bucket/_sum/_count samples share its family).
        family_of: Dict[str, str] = {}
        for name in self.samples:
            base = name[0]
            if base in self.types:
                family_of.setdefault(base, base)
                continue
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[:-len(suffix)] in self.types:
                    family_of[base] = base[:-len(suffix)]
                    break
            else:
                family_of[base] = base
        out: List[str] = []
        emitted_header = set()
        for (name, labels), value in self.samples.items():
            family = family_of.get(name, name)
            if family not in emitted_header:
                emitted_header.add(family)
                help_text = self.helps.get(family, "")
                out.append(f"# HELP {family} {help_text}".rstrip())
                out.append(
                    f"# TYPE {family} {self.types.get(family, 'untyped')}")
            out.append(
                f"{name}{_render_labels(labels)} {_format_value(value)}")
        return "\n".join(out) + "\n" if out else ""


def merge_expositions(texts: Sequence[str]) -> str:
    """Sum samples across expositions by identical ``name{labels}``.

    Counters and histogram buckets add the way fleet aggregation wants;
    gauges add too (queue depths across backends sum meaningfully —
    point-in-time maxima would not merge losslessly in text form).
    Family type/help come from the first exposition that declares them.
    """
    types: "OrderedDict[str, str]" = OrderedDict()
    helps: Dict[str, str] = {}
    samples: "OrderedDict[Tuple[str, Tuple[Tuple[str, str], ...]], float]" \
        = OrderedDict()
    for text in texts:
        parsed = parse_prometheus_text(text)
        for name, kind in parsed.types.items():
            types.setdefault(name, kind)
        for name, help_text in parsed.helps.items():
            helps.setdefault(name, help_text)
        for key, value in parsed.samples.items():
            samples[key] = samples.get(key, 0.0) + value
    return ParsedExposition(types=types, helps=helps, samples=samples).render()
