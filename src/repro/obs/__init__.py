"""Observability: request tracing (`trace`) + unified metrics (`metrics`).

The serving stack's operator surface.  :mod:`repro.obs.trace` follows a
request across threads, processes, and the fleet wire as one trace;
:mod:`repro.obs.metrics` renders per-instance counters/gauges/histograms
plus the engine's provider counters as Prometheus text.  Served by
``GET /tracez`` and ``GET /metricsz`` on every :class:`AssertHttpServer`
and :class:`FleetRouter`.

Strictly volatile: nothing here enters content keys, digests, or
response bodies — tracing on or off, the wire bytes are identical.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import (DEFAULT_BUCKETS, Histogram, MetricsRegistry,
                               merge_expositions, parse_prometheus_text,
                               render_prometheus)
from repro.obs.trace import (Span, SpanContext, TraceBuffer, trace_id_for,
                             merge_trace_records, parse_trace_header,
                             span)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "TraceBuffer",
    "merge_expositions",
    "merge_trace_records",
    "metrics",
    "parse_prometheus_text",
    "parse_trace_header",
    "render_prometheus",
    "span",
    "trace",
    "trace_id_for",
]
