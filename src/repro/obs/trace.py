"""Span-based request tracing with deterministic trace ids.

One request, one trace: a :class:`Span` records where a request spent
its time (queue wait, batch wait, engine map, per-unit solve, the
BMC phases) as ``(name, trace_id, span_id, parent_id, start,
duration, attrs)``.  Three properties make this usable across the whole
serving stack without touching what the stack computes:

- **Deterministic trace ids.**  :func:`trace_id_for` derives the id
  from the request's content key plus its ``request_id`` — the same
  request is the same trace on every host, which is what lets the
  fleet router and a backend agree on an id without coordination
  (propagated on the wire as the ``X-Repro-Trace-Id`` header, see
  :func:`format_trace_header` / :func:`parse_trace_header`).
- **``contextvars`` propagation.**  :func:`span` activates the new
  span as the calling context's current span; children created on the
  same thread (or task) parent themselves automatically, and explicit
  ``parent=`` handles the hops contextvars cannot follow (queue hand-
  offs between threads, pickled work units into process-pool workers).
- **Volatility.**  Tracing is a pure execution concern: span ids and
  timings never enter content keys, digests, fingerprints, or response
  bytes.  Responses are byte-identical with tracing on or off
  (gated by ``benchmarks/bench_obs.py``).

Spans normally record into the process-global :class:`TraceBuffer`
(served by ``GET /tracez``), which retains the N most recent and the N
slowest finished traces.  Inside an engine work unit the executor
activates :func:`export_spans` instead: spans finished in the worker are
shipped back with the unit's result (they are plain picklable objects)
and :func:`ingest` merges them into the parent's buffer — the same
mechanism that ships worker counter deltas in
:mod:`repro.engine.metrics`.

Span timestamps are ``time.perf_counter()`` readings: comparable across
processes on one host (Linux ``CLOCK_MONOTONIC``), not across hosts.
When the router merges trace fragments from remote backends, offsets
stay correct within each fragment.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Span",
    "SpanContext",
    "TraceBuffer",
    "buffer",
    "configure",
    "current",
    "enabled",
    "export_spans",
    "format_trace_header",
    "ingest",
    "merge_trace_records",
    "parse_trace_header",
    "reset",
    "span",
    "trace_id_for",
]

#: The wire header carrying ``trace_id`` or ``trace_id/parent_span_id``.
TRACE_HEADER = "X-Repro-Trace-Id"

_ID_COUNTER = itertools.count(1)


def trace_id_for(content_key: str, request_id: str = "") -> str:
    """Deterministic 32-hex-char trace id for one request.

    Derived from the request's content key *and* its ``request_id``, so
    repeats of the same design by different callers get distinct traces
    while every layer that sees the same request derives the same id.
    """
    digest = hashlib.sha256()
    for part in ("trace", content_key, request_id):
        data = part.encode("utf-8")
        digest.update(str(len(data)).encode("ascii"))
        digest.update(b":")
        digest.update(data)
    return digest.hexdigest()[:32]


def _new_span_id() -> str:
    """Process-unique (and practically fleet-unique) volatile span id."""
    return f"{os.getpid():08x}{next(_ID_COUNTER):08x}"


class SpanContext:
    """The (trace_id, span_id) pair a child span parents to."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def as_tuple(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SpanContext({self.trace_id}, {self.span_id})"


#: What ``parent=`` accepts: a context, a live span, the picklable
#: ``(trace_id, span_id)`` tuple, or ``None``.
ParentLike = Union[SpanContext, "Span", Tuple[str, str], None]


class Span:
    """One timed operation within a trace.

    Plain data plus an idempotent :meth:`end` — picklable (worker spans
    travel back to the parent process with their unit's result) and
    mutated only by the thread that resolves it.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "root",
                 "start", "duration", "attrs", "done", "_sink")

    def __init__(self, name: str, trace_id: str,
                 parent_id: Optional[str] = None, root: bool = False,
                 attrs: Optional[Dict[str, object]] = None,
                 start: Optional[float] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.root = root
        self.start = time.perf_counter() if start is None else start
        self.duration: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.done = False
        self._sink = None  # export list, or None = the global buffer

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def context_tuple(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    def end(self, **attrs) -> None:
        """Close the span (idempotent); extra attrs are merged in."""
        if self.done:
            return
        self.done = True
        if attrs:
            self.attrs.update(attrs)
        if self.duration is None:
            self.duration = time.perf_counter() - self.start
        if self._sink is not None:
            self._sink.append(self)
            self._sink = None
        elif self.root:
            _BUFFER.finish(self.trace_id)

    def __getstate__(self):
        return (self.name, self.trace_id, self.span_id, self.parent_id,
                self.root, self.start, self.duration, self.attrs, self.done)

    def __setstate__(self, state):
        (self.name, self.trace_id, self.span_id, self.parent_id,
         self.root, self.start, self.duration, self.attrs, self.done) = state
        self._sink = None

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else "open"
        return f"Span({self.name}, trace={self.trace_id[:8]}, {state})"


# -- context propagation -------------------------------------------------------

_CURRENT: "ContextVar[Optional[SpanContext]]" = ContextVar(
    "repro_current_span", default=None)
_EXPORT: "ContextVar[Optional[List[Span]]]" = ContextVar(
    "repro_span_export", default=None)

_ENABLED = True


def enabled() -> bool:
    return _ENABLED


def current() -> Optional[SpanContext]:
    """The calling context's active span context (or ``None``)."""
    return _CURRENT.get()


def current_tuple() -> Optional[Tuple[str, str]]:
    """Picklable form of :func:`current` for shipping into workers."""
    ctx = _CURRENT.get()
    return ctx.as_tuple() if ctx is not None else None


def _resolve_parent(parent: ParentLike) -> Optional[SpanContext]:
    if parent is None:
        return None
    if isinstance(parent, SpanContext):
        return parent
    if isinstance(parent, Span):
        return parent.context()
    return SpanContext(parent[0], parent[1])


def begin(name: str, parent: ParentLike = None, trace_id: Optional[str] = None,
          root: bool = False,
          attrs: Optional[Dict[str, object]] = None) -> Optional[Span]:
    """Open a span (the caller must :meth:`Span.end` it).

    Returns ``None`` — record nothing — when tracing is disabled or no
    trace can be determined (neither ``trace_id`` nor a parent): code
    running outside any request trace, like a batch datagen run, pays
    only this check.
    """
    if not _ENABLED:
        return None
    ctx = _resolve_parent(parent)
    tid = trace_id or (ctx.trace_id if ctx is not None else None)
    if tid is None:
        return None
    span_obj = Span(name, tid,
                    parent_id=ctx.span_id if ctx is not None else None,
                    root=root, attrs=attrs)
    sink = _EXPORT.get()
    if sink is not None:
        # Worker-side: hold the span until end(), then export it with
        # the unit result instead of touching this process's buffer.
        span_obj._sink = sink
    else:
        _BUFFER.add(span_obj)
    return span_obj


@contextmanager
def span(name: str, parent: ParentLike = None,
         trace_id: Optional[str] = None, root: bool = False,
         attrs: Optional[Dict[str, object]] = None):
    """Context manager: open a span, make it current, end it on exit.

    ``parent=None`` means "the calling context's current span"; pass an
    explicit context (or ``(trace_id, span_id)`` tuple) for cross-thread
    and cross-process hops.  Yields the :class:`Span` (or ``None`` when
    tracing is off / no trace applies — callers need no guard).
    """
    parent = parent if parent is not None else _CURRENT.get()
    span_obj = begin(name, parent=parent, trace_id=trace_id, root=root,
                     attrs=attrs)
    if span_obj is None:
        yield None
        return
    token = _CURRENT.set(span_obj.context())
    try:
        yield span_obj
    finally:
        _CURRENT.reset(token)
        span_obj.end()


def record_phase(phase: str, seconds: float) -> None:
    """Record an already-measured phase as a finished child span.

    The solve hot path reports phase wall time through
    :func:`repro.engine.metrics.add_time`; when a trace is active that
    measurement *also* becomes a ``solve.<phase>`` span (start
    back-dated by the measured duration), so ``/tracez`` shows where a
    slow request's time went without instrumenting the phases twice.
    """
    if not _ENABLED:
        return
    ctx = _CURRENT.get()
    if ctx is None:
        return
    now = time.perf_counter()
    span_obj = Span(f"solve.{phase}", ctx.trace_id, parent_id=ctx.span_id,
                    start=now - seconds)
    span_obj.duration = seconds
    span_obj.done = True
    sink = _EXPORT.get()
    if sink is not None:
        sink.append(span_obj)
    else:
        _BUFFER.add(span_obj)


@contextmanager
def export_spans():
    """Collect spans finished in this context instead of buffering them.

    The engine's unit wrapper runs each work unit inside this, ships the
    collected list back with the unit's result, and the parent calls
    :func:`ingest` — the span twin of the worker counter-delta protocol.
    Yields the (mutating) list.
    """
    spans: List[Span] = []
    token = _EXPORT.set(spans)
    try:
        yield spans
    finally:
        _EXPORT.reset(token)


def ingest(spans: Iterable[Span]) -> None:
    """Merge worker-exported spans into this process's trace buffer."""
    if not _ENABLED:
        return
    for span_obj in spans:
        _BUFFER.add(span_obj)
        if span_obj.root and span_obj.done:
            _BUFFER.finish(span_obj.trace_id)


# -- wire propagation ----------------------------------------------------------


def _is_hex(value: str, lo: int = 8, hi: int = 64) -> bool:
    if not lo <= len(value) <= hi:
        return False
    return all(c in "0123456789abcdef" for c in value)


def format_trace_header(ctx: SpanContext) -> str:
    """``trace_id/span_id`` — what a router injects on a forward."""
    return f"{ctx.trace_id}/{ctx.span_id}"


def parse_trace_header(value: str
                       ) -> Tuple[Optional[str], Optional[SpanContext]]:
    """Parse an ``X-Repro-Trace-Id`` value into (trace_id, parent ctx).

    Accepts ``trace_id`` alone or ``trace_id/parent_span_id``; anything
    malformed yields ``(None, None)`` so the server derives its own id
    instead of propagating garbage.
    """
    if not value or not isinstance(value, str):
        return None, None
    trace_id, _, parent_id = value.strip().partition("/")
    if not _is_hex(trace_id):
        return None, None
    if parent_id:
        if not _is_hex(parent_id, hi=32):  # span ids are 16 hex chars
            return None, None
        return trace_id, SpanContext(trace_id, parent_id)
    return trace_id, None


# -- the bounded trace buffer --------------------------------------------------


class _TraceRecord:
    """One finished trace: the spans, plus the duration it ranked by."""

    __slots__ = ("trace_id", "name", "duration", "spans")

    def __init__(self, trace_id: str, name: str, duration: float,
                 spans: List[Span]):
        self.trace_id = trace_id
        self.name = name
        self.duration = duration
        self.spans = spans

    def render(self) -> Dict[str, object]:
        """JSON form: spans sorted by offset relative to the trace start.

        Rendered lazily (at ``/tracez`` time, not finalization time) so
        spans that were still open when the local root finished — e.g. a
        batch flush that outlives its last member request — show their
        final durations once they close.
        """
        epoch = min(s.start for s in self.spans)
        now = time.perf_counter()
        spans = []
        for s in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            duration = s.duration if s.duration is not None else now - s.start
            entry: Dict[str, object] = {
                "name": s.name,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "offset_ms": round((s.start - epoch) * 1000.0, 3),
                "duration_ms": round(duration * 1000.0, 3),
            }
            if s.attrs:
                entry["attrs"] = dict(s.attrs)
            if s.root:
                entry["root"] = True
            if not s.done:
                entry["in_progress"] = True
            spans.append(entry)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ms": round(self.duration * 1000.0, 3),
            "epoch": epoch,
            "spans": spans,
        }


class TraceBuffer:
    """Bounded in-memory retention of finished traces.

    Spans accumulate per trace id while a trace is open (the table is
    capped — a trace that never finishes is evicted, not leaked).  When
    a trace's *local root* span ends — the HTTP server span, or the
    service's inflight span for in-process callers — the trace is
    finalized into two retention sets: the ``max_recent`` most recent
    and the ``max_slowest`` slowest, which is what ``GET /tracez``
    serves.  Late spans for an already-finalized trace open a fresh
    entry and age out via the cap; the router's ``/tracez`` merge
    reassembles fragments by trace id anyway.
    """

    def __init__(self, max_recent: int = 64, max_slowest: int = 64,
                 max_open: int = 512):
        for name, value in (("max_recent", max_recent),
                            ("max_slowest", max_slowest),
                            ("max_open", max_open)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be an integer >= 1, got {value!r}")
        self.max_recent = max_recent
        self.max_slowest = max_slowest
        self.max_open = max_open
        self.dropped = 0
        self.finished = 0
        self._open: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._recent: "deque[_TraceRecord]" = deque(maxlen=max_recent)
        self._slowest: List[_TraceRecord] = []  # ascending by duration
        self._lock = threading.Lock()

    def add(self, span_obj: Span) -> None:
        with self._lock:
            bucket = self._open.get(span_obj.trace_id)
            if bucket is None:
                bucket = self._open[span_obj.trace_id] = []
                while len(self._open) > self.max_open:
                    self._open.popitem(last=False)
                    self.dropped += 1
            bucket.append(span_obj)

    def finish(self, trace_id: str) -> None:
        """Finalize ``trace_id``: move its spans into retention."""
        with self._lock:
            spans = self._open.pop(trace_id, None)
            if not spans:
                return
            root = next((s for s in spans if s.root and s.done), None)
            if root is not None:
                name, duration = root.name, root.duration or 0.0
            else:  # pragma: no cover - defensive: finish without a root
                name = spans[0].name
                ends = [s.start + (s.duration or 0.0) for s in spans]
                duration = max(ends) - min(s.start for s in spans)
            record = _TraceRecord(trace_id, name, duration, spans)
            self.finished += 1
            self._recent.append(record)
            # Ascending insert + floor pop keeps the N slowest.
            lo = 0
            for lo, kept in enumerate(self._slowest):  # noqa: B007
                if kept.duration >= record.duration:
                    break
            else:
                lo = len(self._slowest)
            self._slowest.insert(lo, record)
            if len(self._slowest) > self.max_slowest:
                self._slowest.pop(0)

    def snapshot(self) -> Dict[str, object]:
        """The ``/tracez`` payload: recent + slowest finished traces.

        Records sharing a trace id (a trace finalized in fragments, or
        one visible through both a router and its same-process backend)
        are merged, spans deduplicated by span id.
        """
        with self._lock:
            recent = list(self._recent)
            slowest = list(self._slowest)
            open_count = len(self._open)
            dropped = self.dropped
            finished = self.finished
        rendered_recent = merge_trace_records(
            [r.render() for r in recent])
        rendered_slowest = merge_trace_records(
            [r.render() for r in reversed(slowest)])
        return {
            "enabled": _ENABLED,
            "finished": finished,
            "open": open_count,
            "dropped": dropped,
            "recent": rendered_recent,
            "slowest": rendered_slowest,
        }

    def clear(self) -> None:
        with self._lock:
            self._open.clear()
            self._recent.clear()
            self._slowest.clear()
            self.dropped = 0
            self.finished = 0


def merge_trace_records(records: Sequence[Dict[str, object]]
                        ) -> List[Dict[str, object]]:
    """Merge rendered trace dicts by trace id (order of first sighting).

    Span lists concatenate with span-id dedup; offsets are re-based onto
    the earliest fragment's epoch when both fragments carry comparable
    (same-host) epochs; the merged duration is the max fragment's.  Used
    both by :meth:`TraceBuffer.snapshot` and by the fleet router when it
    folds backend ``/tracez`` payloads into its own.
    """
    merged: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    seen: Dict[str, set] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if not isinstance(trace_id, str):
            continue
        spans = record.get("spans") or []
        target = merged.get(trace_id)
        if target is None:
            target = merged[trace_id] = dict(record)
            target["spans"] = []
            seen[trace_id] = set()
        else:
            target["duration_ms"] = max(
                float(target.get("duration_ms") or 0.0),
                float(record.get("duration_ms") or 0.0))
        ids = seen[trace_id]
        # Re-base this fragment's offsets onto the merged trace's epoch
        # (perf_counter epochs compare only on one host; fragments
        # without one keep their own offsets).
        target_epoch = target.get("epoch")
        record_epoch = record.get("epoch")
        shift_ms = 0.0
        if isinstance(target_epoch, (int, float)) \
                and isinstance(record_epoch, (int, float)):
            if record_epoch < target_epoch:
                delta = (target_epoch - record_epoch) * 1000.0
                for entry in target["spans"]:
                    entry["offset_ms"] = round(entry["offset_ms"] + delta, 3)
                target["epoch"] = record_epoch
            else:
                shift_ms = (record_epoch - target_epoch) * 1000.0
        for entry in spans:
            span_id = entry.get("span_id")
            if span_id in ids:
                continue
            ids.add(span_id)
            if shift_ms:
                entry = dict(entry)
                entry["offset_ms"] = round(entry["offset_ms"] + shift_ms, 3)
            target["spans"].append(entry)
    for record in merged.values():
        record["spans"].sort(key=lambda e: (e["offset_ms"], e["span_id"]))
        record["n_spans"] = len(record["spans"])
    return list(merged.values())


_BUFFER = TraceBuffer()


def buffer() -> TraceBuffer:
    """The process-global trace buffer behind ``GET /tracez``."""
    return _BUFFER


def configure(enabled: Optional[bool] = None,
              max_recent: Optional[int] = None,
              max_slowest: Optional[int] = None,
              max_open: Optional[int] = None) -> bool:
    """Reconfigure process-global tracing; returns the *previous*
    enabled flag (so callers can restore it).  Passing any size swaps in
    a fresh, empty buffer."""
    global _ENABLED, _BUFFER
    previous = _ENABLED
    if enabled is not None:
        _ENABLED = bool(enabled)
    if any(value is not None for value in (max_recent, max_slowest,
                                           max_open)):
        _BUFFER = TraceBuffer(
            max_recent=max_recent if max_recent is not None
            else _BUFFER.max_recent,
            max_slowest=max_slowest if max_slowest is not None
            else _BUFFER.max_slowest,
            max_open=max_open if max_open is not None else _BUFFER.max_open)
    return previous


def reset() -> None:
    """Drop every retained trace (tests and benches start clean)."""
    _BUFFER.clear()
