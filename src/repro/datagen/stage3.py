"""Stage 3 — CoT generation and validation.

The CoT oracle writes a reasoning chain for each training SVA-Bug entry;
a validation script compares the chain's conclusion with the golden
solution.  Entries with a correct chain keep it (and their question gains
the 'step by step' marker); entries with a wrong chain keep only the plain
buggy-line/fix answer — matching the paper's two entry forms.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.datagen.records import SvaBugEntry
from repro.oracles.cot import CotOracle


class Stage3Result:
    def __init__(self):
        self.entries: List[SvaBugEntry] = []
        self.generated = 0
        self.validated = 0

    @property
    def validity_rate(self) -> float:
        if not self.generated:
            return 0.0
        return self.validated / self.generated


def run_stage3(entries: List[SvaBugEntry], seed: int = 0,
               oracle: Optional[CotOracle] = None) -> Stage3Result:
    """Attach validated CoTs to training entries (in place) and report the
    observed validity rate (paper: 74.55%)."""
    oracle = oracle or CotOracle(random.Random(seed))
    result = Stage3Result()
    for entry in entries:
        proposal = oracle.generate(entry.record, entry.logs,
                                   entry.assertion_signals)
        result.generated += 1
        if proposal.is_correct_for(entry.record):
            entry.cot = proposal.text
            result.validated += 1
        else:
            entry.cot = None
        result.entries.append(entry)
    return result
