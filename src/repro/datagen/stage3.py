"""Stage 3 — CoT generation and validation.

The CoT oracle writes a reasoning chain for each training SVA-Bug entry;
a validation script compares the chain's conclusion with the golden
solution.  Entries with a correct chain keep it (and their question gains
the 'step by step' marker); entries with a wrong chain keep only the plain
buggy-line/fix answer — matching the paper's two entry forms.

Each entry is an independent :func:`stage3_unit` task whose oracle RNG
derives from ``(global_seed, module_name, "stage3")`` plus the entry's
per-design ordinal, so chains are attached identically whether entries
are processed serially or across a worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bugs.injector import BugRecord
from repro.datagen.records import SvaBugEntry
from repro.engine import ExecutionEngine, StageContext
from repro.oracles.cot import CotOracle
from repro.store import unit_memo_key

STAGE_NAME = "stage3"


@dataclass
class Stage3Result:
    entries: List[SvaBugEntry] = field(default_factory=list)
    generated: int = 0
    validated: int = 0

    @property
    def validity_rate(self) -> float:
        if not self.generated:
            return 0.0
        return self.validated / self.generated


@dataclass
class Stage3Task:
    """One per-entry work unit: just the fields the oracle reads."""

    record: BugRecord
    logs: str
    assertion_signals: List[str]
    ctx: StageContext
    ordinal: int  # per-design ordinal, keeps sibling entries' streams apart


def stage3_unit(task: Stage3Task) -> Tuple[Optional[str], bool]:
    """Generate one chain; return (text, validated-against-golden)."""
    oracle = CotOracle(task.ctx.rng(f"cot#{task.ordinal}"))
    proposal = oracle.generate(task.record, task.logs,
                               task.assertion_signals)
    return proposal.text, proposal.is_correct_for(task.record)


def run_stage3(entries: List[SvaBugEntry], seed: int = 0,
               oracle: Optional[CotOracle] = None,
               engine: Optional[ExecutionEngine] = None) -> Stage3Result:
    """Attach validated CoTs to training entries (in place) and report the
    observed validity rate (paper: 74.55%).

    Passing an explicit ``oracle`` keeps the legacy serial semantics (one
    RNG threaded through all entries); otherwise per-entry streams are
    derived from ``seed`` and any ``engine`` backend yields identical
    output.
    """
    result = Stage3Result()
    if oracle is not None:
        for entry in entries:
            proposal = oracle.generate(entry.record, entry.logs,
                                       entry.assertion_signals)
            result.generated += 1
            if proposal.is_correct_for(entry.record):
                entry.cot = proposal.text
                result.validated += 1
            else:
                entry.cot = None
            result.entries.append(entry)
        return result

    ordinals: Dict[str, int] = {}
    tasks: List[Stage3Task] = []
    for entry in entries:
        name = entry.record.design_name
        ordinal = ordinals.get(name, 0)
        ordinals[name] = ordinal + 1
        tasks.append(Stage3Task(
            record=entry.record, logs=entry.logs,
            assertion_signals=entry.assertion_signals,
            ctx=StageContext(seed, STAGE_NAME, name), ordinal=ordinal))
    if engine is None:
        outcomes = [stage3_unit(task) for task in tasks]
    else:
        # Sibling entries of one design share a ctx.unit_id; the ordinal
        # keeps their memo keys (like their RNG streams) apart.
        outcomes = engine.map(
            stage3_unit, tasks, stage=STAGE_NAME,
            memo_key=lambda task: unit_memo_key(
                task.ctx.stage_name, task.ctx.unit_id, engine.memo_context,
                task.ctx.global_seed, task.ordinal))
    for entry, (text, validated) in zip(entries, outcomes):
        result.generated += 1
        if validated:
            entry.cot = text
            result.validated += 1
        else:
            entry.cot = None
        result.entries.append(entry)
    return result
