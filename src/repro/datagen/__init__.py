"""The three-stage data augmentation pipeline (paper Section II, Fig 2-I).

- Stage 1 (:mod:`repro.datagen.stage1`): filtering, syntax checking and the
  Verilog-PT pretraining dataset (failing code + spec + failure analysis).
- Stage 2 (:mod:`repro.datagen.stage2`): SVA + bug generation with
  compile/BMC validation, splitting outcomes into SVA-Bug candidates
  (assertion fires) and Verilog-Bug entries (silent functional bugs).
- Stage 3 (:mod:`repro.datagen.stage3`): CoT generation and validation
  against golden solutions.
- :mod:`repro.datagen.split`: the paper's 90/10 module-name split within
  code-length bins.
- :mod:`repro.datagen.pipeline`: the orchestrator producing a
  :class:`repro.datagen.records.DatasetBundle`.
"""

from repro.datagen.pipeline import DatagenConfig, DatasetBundle, run_pipeline

__all__ = ["DatagenConfig", "DatasetBundle", "run_pipeline"]
