"""Dataset entry types for the three generated datasets and the benchmark.

Field names follow the paper's Fig. 2: Verilog-PT entries are plain text
for next-token pretraining; Verilog-Bug and SVA-Bug entries are
question/answer pairs; SVA-Eval cases add the golden solution and the
bucketing labels used by the evaluation figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bugs.injector import BugRecord
from repro.bugs.taxonomy import (
    Relation,
    length_bin_label,
    length_bin_of,
)


class VerilogPTEntry:
    """One pretraining text: code + spec (+ failure analysis when the code
    does not compile)."""

    __slots__ = ("source", "spec", "analysis", "compiles", "break_kind")

    def __init__(self, source: str, spec: str, analysis: str = "",
                 compiles: bool = True, break_kind: str = ""):
        self.source = source
        self.spec = spec
        self.analysis = analysis
        self.compiles = compiles
        self.break_kind = break_kind

    def text(self) -> str:
        parts = [self.source, "", self.spec]
        if self.analysis:
            parts += ["", "Failure analysis:", self.analysis]
        return "\n".join(parts)


class VerilogBugEntry:
    """A functional bug that fired no assertion (auxiliary SFT task)."""

    __slots__ = ("record", "spec")

    def __init__(self, record: BugRecord, spec: str):
        self.record = record
        self.spec = spec

    def question_text(self) -> str:
        return (f"There is a Verilog design that contains a bug.\n"
                f"{self.record.buggy_source}\n"
                f"The specification is:\n{self.spec}\n"
                f"Please give me a solution.")

    def answer_text(self) -> str:
        return (f"Buggy line {self.record.line}: {self.record.buggy_line}\n"
                f"Fix: {self.record.fixed_line}")


class SvaBugEntry:
    """A bug + SVA pair that triggers an assertion failure (the core task).

    ``relation`` is derived from the first failing assertion; ``cot`` is
    present only when Stage 3 validated the chain, in which case the
    question carries the 'step by step' marker, exactly as in the paper.
    """

    __slots__ = ("record", "spec", "buggy_source_with_sva", "logs",
                 "failing_labels", "relation", "cot", "assertion_signals")

    def __init__(self, record: BugRecord, spec: str, buggy_source_with_sva: str,
                 logs: str, failing_labels: List[str], relation: Relation,
                 assertion_signals: List[str], cot: Optional[str] = None):
        self.record = record
        self.spec = spec
        self.buggy_source_with_sva = buggy_source_with_sva
        self.logs = logs
        self.failing_labels = failing_labels
        self.relation = relation
        self.assertion_signals = assertion_signals
        self.cot = cot

    @property
    def step_by_step(self) -> bool:
        return self.cot is not None

    def question_text(self) -> str:
        suffix = " (step by step)" if self.step_by_step else ""
        return (f"There is a buggy SystemVerilog design that triggers "
                f"assertions.\n{self.buggy_source_with_sva}\n"
                f"Simulation logs:\n{self.logs}\n"
                f"The specification is:\n{self.spec}\n"
                f"Please give me a solution{suffix}.")

    def answer_text(self) -> str:
        answer = (f"Buggy line {self.record.line}: {self.record.buggy_line}\n"
                  f"Fix: {self.record.fixed_line}")
        if self.cot:
            answer += f"\n\nReasoning:\n{self.cot}"
        return answer

    # -- bucketing ----------------------------------------------------------

    @property
    def line_count(self) -> int:
        return self.record.buggy_source.count("\n")

    def length_bin(self):
        return length_bin_of(self.line_count)

    def bucket_labels(self) -> List[str]:
        """All Table-II bucket names this entry belongs to (one per axis)."""
        return [self.relation.value, self.record.kind.value,
                self.record.conditionality.value]


class SvaEvalCase:
    """One benchmark case (machine- or human-origin)."""

    __slots__ = ("case_id", "entry", "origin")

    def __init__(self, case_id: str, entry: SvaBugEntry, origin: str):
        if origin not in ("machine", "human"):
            raise ValueError(f"origin must be machine|human, got {origin!r}")
        self.case_id = case_id
        self.entry = entry
        self.origin = origin

    @property
    def record(self) -> BugRecord:
        return self.entry.record

    def length_bin_name(self) -> str:
        return length_bin_label(self.entry.length_bin())


def distribution_table(entries: List[SvaBugEntry]) -> Dict[str, int]:
    """Table-II style marginal counts (length bins + all seven bug types)."""
    counts: Dict[str, int] = {}
    for entry in entries:
        bin_name = length_bin_label(entry.length_bin())
        counts[bin_name] = counts.get(bin_name, 0) + 1
        for label in entry.bucket_labels():
            counts[label] = counts.get(label, 0) + 1
    return counts
