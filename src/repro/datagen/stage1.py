"""Stage 1 — filtering, syntax checking, and the Verilog-PT dataset.

The paper filters its raw corpus (incomplete modules, logic-free stubs,
duplicates), syntax-checks the rest with Icarus, has GPT-4 write specs, and
keeps *non-compiling* code — paired with a failure analysis — in the
Verilog-PT pretraining set.

Offline we reconstruct the same flow: the raw stream mixes golden template
instances with junk samples (so the filters do real work) and
syntax-broken variants (so the compiler check and failure analyses do real
work).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.corpus.generator import CorpusGenerator
from repro.corpus.meta import DesignSeed
from repro.corpus.syntax_breaker import break_syntax
from repro.datagen.records import VerilogPTEntry
from repro.oracles.spec import analyze_compile_failure, write_spec
from repro.verilog.compile import compile_source

# Junk families the paper's filters remove before the compiler even runs.
_JUNK_SAMPLES = [
    # (1) incomplete: lacks module/endmodule.
    "assign y = a & b;\n",
    "  wire t;\n  assign t = 1'b0;\n",
    # (2) no functional logic: initialisation/assignment only.
    "module stub_init ();\n  reg r;\n  initial\n    r = 1'b0;\nendmodule\n",
    "module stub_empty ();\nendmodule\n",
]


def is_filtered_out(source: str) -> Optional[str]:
    """Apply the paper's three filter criteria.  Returns the reason or None.

    Criteria: (1) incomplete code lacking module/endmodule; (2) code with
    no functional logic (only initialisation/assignments to constants);
    (3) duplicates are handled by the caller (needs corpus-wide state).
    """
    if "module" not in source or "endmodule" not in source:
        return "incomplete"
    body = source.split(";", 1)[-1]
    has_logic = any(kw in body for kw in ("always", "assign", "case", "if"))
    if not has_logic:
        return "no_functional_logic"
    if "assign" in body and "always" not in body:
        # Only constant assignments (no identifier on any RHS) count as
        # logic-free.
        import re
        rhs_ids = re.findall(r"=\s*([A-Za-z_][\w]*)", body)
        if not rhs_ids:
            return "no_functional_logic"
    return None


class Stage1Result:
    """Outputs of Stage 1."""

    def __init__(self):
        self.compiled: List[DesignSeed] = []
        self.pt_entries: List[VerilogPTEntry] = []
        self.filtered_count = 0
        self.duplicate_count = 0
        self.failed_compile_count = 0


def run_stage1(seeds: List[DesignSeed], rng: random.Random,
               break_rate: float = 0.25,
               junk_rate: float = 0.1) -> Stage1Result:
    """Run the filter -> syntax-check -> spec/analysis flow.

    ``break_rate`` of the golden seeds get a syntax-broken sibling (feeding
    the failure-analysis path); ``junk_rate`` controls how much junk is
    mixed in for the filters to remove.
    """
    result = Stage1Result()
    seen_sources = set()

    # Mix junk into the stream so the filters are exercised.
    junk_budget = int(len(seeds) * junk_rate) + 1
    raw_stream: List[Tuple[Optional[DesignSeed], str]] = \
        [(seed, seed.source) for seed in seeds]
    for i in range(junk_budget):
        raw_stream.append((None, _JUNK_SAMPLES[i % len(_JUNK_SAMPLES)]))
    rng.shuffle(raw_stream)

    for seed, source in raw_stream:
        reason = is_filtered_out(source)
        if reason is not None:
            result.filtered_count += 1
            continue
        if source in seen_sources:
            result.duplicate_count += 1
            continue
        seen_sources.add(source)

        compile_result = compile_source(source)
        meta = seed.meta if seed is not None else None
        if not compile_result.ok:
            result.failed_compile_count += 1
            spec = write_spec(source, meta)
            analysis = analyze_compile_failure(source)
            result.pt_entries.append(VerilogPTEntry(
                source, spec, analysis, compiles=False))
            continue

        if seed is not None:
            result.compiled.append(seed)
            # Clean code + spec also contributes structural insight to PT.
            result.pt_entries.append(VerilogPTEntry(
                source, write_spec(source, meta), compiles=True))
            # A fraction of samples get a syntax-broken sibling, standing in
            # for the paper's naturally-occurring non-compiling corpus code.
            if rng.random() < break_rate:
                broken = break_syntax(source, rng)
                if broken is not None:
                    kind, broken_source = broken
                    check = compile_source(broken_source)
                    if not check.ok:
                        result.failed_compile_count += 1
                        result.pt_entries.append(VerilogPTEntry(
                            broken_source,
                            write_spec(broken_source, meta),
                            analyze_compile_failure(broken_source),
                            compiles=False, break_kind=kind))
    return result


def generate_stage1(count: int, seed: int = 0,
                    break_rate: float = 0.25) -> Stage1Result:
    """Convenience wrapper: generate ``count`` designs and run Stage 1."""
    generator = CorpusGenerator(seed=seed)
    seeds = generator.generate(count)
    return run_stage1(seeds, random.Random(seed + 1), break_rate=break_rate)
