"""Stage 1 — filtering, syntax checking, and the Verilog-PT dataset.

The paper filters its raw corpus (incomplete modules, logic-free stubs,
duplicates), syntax-checks the rest with Icarus, has GPT-4 write specs, and
keeps *non-compiling* code — paired with a failure analysis — in the
Verilog-PT pretraining set.

Offline we reconstruct the same flow: the raw stream mixes golden template
instances with junk samples (so the filters do real work) and
syntax-broken variants (so the compiler check and failure analyses do real
work).

Execution is decomposed for the stage-graph engine: a cheap serial
pre-pass (:func:`prepare_stage1`) mixes junk, shuffles, filters and
deduplicates (dedup needs corpus-wide state), then the expensive
per-design work (compile, spec, break-sibling) runs as independent
:func:`stage1_unit` tasks whose RNG streams derive from
``(global_seed, module_name, "stage1")`` — so a parallel run is
byte-identical to a serial one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.corpus.generator import CorpusGenerator
from repro.corpus.meta import DesignSeed
from repro.corpus.syntax_breaker import break_syntax
from repro.datagen.records import VerilogPTEntry
from repro.engine import ExecutionEngine, StageContext, derive_rng
from repro.oracles.spec import analyze_compile_failure, write_spec
from repro.store import unit_memo_key
from repro.verilog.compile import compile_source

STAGE_NAME = "stage1"

# Junk families the paper's filters remove before the compiler even runs.
_JUNK_SAMPLES = [
    # (1) incomplete: lacks module/endmodule.
    "assign y = a & b;\n",
    "  wire t;\n  assign t = 1'b0;\n",
    # (2) no functional logic: initialisation/assignment only.
    "module stub_init ();\n  reg r;\n  initial\n    r = 1'b0;\nendmodule\n",
    "module stub_empty ();\nendmodule\n",
]


def is_filtered_out(source: str) -> Optional[str]:
    """Apply the paper's three filter criteria.  Returns the reason or None.

    Criteria: (1) incomplete code lacking module/endmodule; (2) code with
    no functional logic (only initialisation/assignments to constants);
    (3) duplicates are handled by the caller (needs corpus-wide state).
    """
    if "module" not in source or "endmodule" not in source:
        return "incomplete"
    body = source.split(";", 1)[-1]
    has_logic = any(kw in body for kw in ("always", "assign", "case", "if"))
    if not has_logic:
        return "no_functional_logic"
    if "assign" in body and "always" not in body:
        # Only constant assignments (no identifier on any RHS) count as
        # logic-free.
        import re
        rhs_ids = re.findall(r"=\s*([A-Za-z_][\w]*)", body)
        if not rhs_ids:
            return "no_functional_logic"
    return None


@dataclass
class Stage1Result:
    """Outputs of Stage 1."""

    compiled: List[DesignSeed] = field(default_factory=list)
    pt_entries: List[VerilogPTEntry] = field(default_factory=list)
    filtered_count: int = 0
    duplicate_count: int = 0
    failed_compile_count: int = 0


@dataclass
class Stage1Task:
    """One per-design work unit (picklable for the process backend)."""

    seed: DesignSeed
    ctx: StageContext
    break_rate: float


@dataclass
class Stage1UnitResult:
    """Per-design output, merged in stream order by :func:`merge_stage1`."""

    seed: DesignSeed
    pt_entries: List[VerilogPTEntry]
    compiled: bool
    failed_compile_count: int


def prepare_stage1(seeds: List[DesignSeed], stream_rng: random.Random,
                   junk_rate: float = 0.1
                   ) -> Tuple[List[DesignSeed], int, int]:
    """Serial pre-pass: junk mixing, shuffle, filters, dedup.

    Returns ``(survivors, filtered_count, duplicate_count)``; survivors
    keep the shuffled stream order, which the merge step preserves.
    """
    junk_budget = int(len(seeds) * junk_rate) + 1
    raw_stream: List[Tuple[Optional[DesignSeed], str]] = \
        [(seed, seed.source) for seed in seeds]
    for i in range(junk_budget):
        raw_stream.append((None, _JUNK_SAMPLES[i % len(_JUNK_SAMPLES)]))
    stream_rng.shuffle(raw_stream)

    survivors: List[DesignSeed] = []
    filtered = 0
    duplicates = 0
    seen_sources = set()
    for seed, source in raw_stream:
        if is_filtered_out(source) is not None:
            filtered += 1
            continue
        if source in seen_sources:
            duplicates += 1
            continue
        seen_sources.add(source)
        if seed is not None:
            survivors.append(seed)
        else:  # pragma: no cover - junk never passes the filters
            filtered += 1
    return survivors, filtered, duplicates


def unit_ids(seeds: List[DesignSeed]) -> List[str]:
    """Stable per-design unit ids: the module name, disambiguated when two
    distinct designs drew the same (random-uid) name — otherwise they
    would replay identical derived RNG streams."""
    counts: dict = {}
    ids: List[str] = []
    for seed in seeds:
        occurrence = counts.get(seed.name, 0)
        counts[seed.name] = occurrence + 1
        ids.append(seed.name if occurrence == 0
                   else f"{seed.name}#{occurrence}")
    return ids


def stage1_unit(task: Stage1Task) -> Stage1UnitResult:
    """Pure per-design Stage-1 work: compile + spec (+ broken sibling)."""
    seed = task.seed
    entries: List[VerilogPTEntry] = []
    failed = 0

    compile_result = compile_source(seed.source)
    if not compile_result.ok:
        entries.append(VerilogPTEntry(
            seed.source, write_spec(seed.source, seed.meta),
            analyze_compile_failure(seed.source), compiles=False))
        return Stage1UnitResult(seed, entries, compiled=False,
                                failed_compile_count=1)

    # Clean code + spec also contributes structural insight to PT.
    entries.append(VerilogPTEntry(
        seed.source, write_spec(seed.source, seed.meta), compiles=True))

    # A fraction of samples get a syntax-broken sibling, standing in for
    # the paper's naturally-occurring non-compiling corpus code.
    break_rng = task.ctx.rng("break")
    if break_rng.random() < task.break_rate:
        broken = break_syntax(seed.source, break_rng)
        if broken is not None:
            kind, broken_source = broken
            check = compile_source(broken_source)
            if not check.ok:
                failed += 1
                entries.append(VerilogPTEntry(
                    broken_source,
                    write_spec(broken_source, seed.meta),
                    analyze_compile_failure(broken_source),
                    compiles=False, break_kind=kind))
    return Stage1UnitResult(seed, entries, compiled=True,
                            failed_compile_count=failed)


def merge_stage1(unit_results: List[Stage1UnitResult], filtered_count: int,
                 duplicate_count: int) -> Stage1Result:
    """Deterministic order-preserving merge of per-design results."""
    result = Stage1Result(filtered_count=filtered_count,
                          duplicate_count=duplicate_count)
    for unit in unit_results:
        if unit.compiled:
            result.compiled.append(unit.seed)
        result.pt_entries.extend(unit.pt_entries)
        result.failed_compile_count += unit.failed_compile_count
    return result


def run_stage1(seeds: List[DesignSeed], rng: Optional[random.Random] = None,
               break_rate: float = 0.25, junk_rate: float = 0.1,
               global_seed: Optional[int] = None,
               engine: Optional[ExecutionEngine] = None) -> Stage1Result:
    """Run the filter -> syntax-check -> spec/analysis flow.

    ``break_rate`` of the golden seeds get a syntax-broken sibling (feeding
    the failure-analysis path); ``junk_rate`` controls how much junk is
    mixed in for the filters to remove.  Pass ``global_seed`` (pipeline
    path) or a legacy ``rng`` from which a global seed is drawn; per-design
    streams are derived, never shared, so any ``engine`` backend yields
    identical output.
    """
    if global_seed is None:
        global_seed = (rng or random.Random(0)).randrange(2 ** 32)
    stream_rng = derive_rng(global_seed, STAGE_NAME, "stream")
    survivors, filtered, duplicates = prepare_stage1(
        seeds, stream_rng, junk_rate=junk_rate)
    tasks = [Stage1Task(seed=seed,
                        ctx=StageContext(global_seed, STAGE_NAME, unit_id),
                        break_rate=break_rate)
             for seed, unit_id in zip(survivors, unit_ids(survivors))]
    if engine is None:
        unit_results = [stage1_unit(task) for task in tasks]
    else:
        unit_results = engine.map(
            stage1_unit, tasks, stage=STAGE_NAME,
            memo_key=lambda task: unit_memo_key(
                task.ctx.stage_name, task.ctx.unit_id, engine.memo_context,
                task.ctx.global_seed))
    return merge_stage1(unit_results, filtered, duplicates)


def generate_stage1(count: int, seed: int = 0, break_rate: float = 0.25,
                    families=None, weights=None,
                    engine: Optional[ExecutionEngine] = None) -> Stage1Result:
    """Convenience wrapper: generate ``count`` designs and run Stage 1.

    ``families``/``weights`` select and weight corpus template families;
    ``engine`` fans both the corpus generation and the per-design Stage-1
    work out over its worker pool.
    """
    generator = CorpusGenerator(seed=seed, families=families, weights=weights)
    seeds = generator.generate(count, engine=engine)
    return run_stage1(seeds, global_seed=seed + 1, break_rate=break_rate,
                      engine=engine)
