"""The paper's train/test split (Section II, Stage 2, steps 1-3).

1. Organise buggy code into code-length bins (0,50], (50,100], (100,150],
   (150,200], (200,+inf);
2. enumerate unique module names within each bin;
3. uniformly select 90% of the module names (and all their cases) for
   training; the rest seed the SVA-Eval-Machine benchmark.

Splitting by *module name* keeps train and test completely separate: no
design contributes cases to both sides.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.bugs.taxonomy import length_bin_of
from repro.datagen.records import SvaBugEntry


def split_by_module_name(entries: List[SvaBugEntry], rng: random.Random,
                         train_fraction: float = 0.9
                         ) -> Tuple[List[SvaBugEntry], List[SvaBugEntry]]:
    """Return (train, test) with module-name disjointness per length bin."""
    bins: Dict[object, Dict[str, List[SvaBugEntry]]] = {}
    for entry in entries:
        bin_key = length_bin_of(entry.line_count)
        bins.setdefault(bin_key, {}).setdefault(
            entry.record.design_name, []).append(entry)

    train: List[SvaBugEntry] = []
    test: List[SvaBugEntry] = []
    for bin_key in sorted(bins, key=lambda b: (b[0], b[1] is None, b[1] or 0)):
        by_name = bins[bin_key]
        names = sorted(by_name)
        rng.shuffle(names)
        cut = int(round(len(names) * train_fraction))
        if len(names) > 1:
            cut = min(max(cut, 1), len(names) - 1)
        for name in names[:cut]:
            train.extend(by_name[name])
        for name in names[cut:]:
            test.extend(by_name[name])
    return train, test


def assert_disjoint(train: List[SvaBugEntry], test: List[SvaBugEntry]) -> None:
    """Raise if any module name appears on both sides."""
    train_names = {e.record.design_name for e in train}
    test_names = {e.record.design_name for e in test}
    overlap = train_names & test_names
    if overlap:
        raise AssertionError(
            f"train/test share module names: {sorted(overlap)[:5]}")
