"""Stage 2 — key components generation and validation.

For every compiled design:

1. The SVA oracle (Claude-3.5 surrogate) proposes assertions; each one is
   inserted into the *golden* design, compiled, and bounded-checked.
   Proposals that fail either step are hallucinations and are dropped.
2. The bug injector proposes mutations; mutants that fail compilation are
   dropped (the paper "employed the compiler again to identify and
   eliminate syntax errors introduced during the random bug generation").
3. Each surviving bug is checked against the validated SVAs.  If an
   assertion fires, the case becomes an SVA-Bug candidate (with its logs
   and Direct/Indirect classification); otherwise it becomes a Verilog-Bug
   entry — a real functional bug the available assertions failed to cover.

Each design is an independent :func:`stage2_unit` task: the SVA oracle and
bug injector get fresh RNG streams derived from
``(global_seed, module_name, "stage2")``, so designs can be processed on
any worker in any order and still merge into the exact serial result.
This stage dominates pipeline wall time (it owns the bounded checker), so
it benefits most from the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bugs.classify import classify_relation
from repro.bugs.injector import BugInjector
from repro.cov import merge_reports
from repro.corpus.meta import DesignSeed
from repro.datagen.records import SvaBugEntry, VerilogBugEntry
from repro.datagen.stage1 import unit_ids
from repro.engine import ExecutionEngine, StageContext
from repro.oracles.spec import write_spec
from repro.oracles.sva import SvaOracle, SvaProposal
from repro.store import unit_memo_key
from repro.sva.bmc import BmcConfig, bounded_check, bounded_check_batch
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module

STAGE_NAME = "stage2"

#: SVA validation modes: ``per_proposal`` is the paper-faithful reference
#: (one full bounded check of the golden design per proposal);
#: ``batched`` produces identical verdicts from a single shared bounded
#: check (see :func:`repro.sva.bmc.bounded_check_batch`), cutting the
#: dominant golden-design simulation cost by ~the proposal count.
SVA_VALIDATION_MODES = ("batched", "per_proposal")


@dataclass
class Stage2Result:
    sva_bug_entries: List[SvaBugEntry] = field(default_factory=list)
    verilog_bug_entries: List[VerilogBugEntry] = field(default_factory=list)
    rejected_svas: int = 0
    accepted_svas: int = 0
    rejected_bugs_syntax: int = 0
    sim_error_count: int = 0

    def merge_from(self, other: "Stage2Result") -> None:
        """Accumulate another (per-design) result into this one."""
        self.sva_bug_entries.extend(other.sva_bug_entries)
        self.verilog_bug_entries.extend(other.verilog_bug_entries)
        self.rejected_svas += other.rejected_svas
        self.accepted_svas += other.accepted_svas
        self.rejected_bugs_syntax += other.rejected_bugs_syntax
        self.sim_error_count += other.sim_error_count


@dataclass
class Stage2Task:
    """One per-design work unit (picklable for the process backend)."""

    seed: DesignSeed
    ctx: StageContext
    bugs_per_design: int
    hallucination_rate: float
    bmc: BmcConfig
    sva_validation: str = "batched"


def _validate_svas_per_proposal(seed: DesignSeed,
                                proposals: List[SvaProposal],
                                bmc: BmcConfig,
                                coverage_out: Optional[dict] = None
                                ) -> "tuple[List[SvaProposal], int]":
    """Reference validation: one full bounded check per proposal."""
    valid: List[SvaProposal] = []
    rejected = 0
    reports = []
    for proposal in proposals:
        combined = compile_with_sva(seed.source, proposal.blocks())
        if not combined.ok:
            rejected += 1
            continue
        check = bounded_check(combined.design, bmc)
        if check.coverage:
            reports.append(check.coverage)
        if not check.passed_bound:
            rejected += 1
            continue
        valid.append(proposal)
    if coverage_out is not None and reports:
        coverage_out.update(merge_reports(reports))
    return valid, rejected


def _assertion_label(proposal: SvaProposal) -> str:
    # SvaHint.assertion_source labels the assertion "<name>_assertion".
    return f"{proposal.name}_assertion"


def validate_svas(seed: DesignSeed, proposals: List[SvaProposal],
                  bmc: BmcConfig, mode: str = "batched",
                  coverage_out: Optional[dict] = None
                  ) -> "tuple[List[SvaProposal], int]":
    """Keep proposals that compile into and hold on the golden design.

    ``batched`` filters non-compiling proposals individually (cheap), then
    scores all survivors with one shared bounded check — verdicts are
    identical to ``per_proposal`` (asserted by the test suite) at a
    fraction of the simulation cost.  Falls back to the reference path
    whenever per-label attribution would be ambiguous.

    With ``bmc.coverage`` on, ``coverage_out`` (a dict) receives the
    coverage report the validating checks already produced — callers get
    telemetry without re-running a single simulation.
    """
    if mode not in SVA_VALIDATION_MODES:
        raise ValueError(f"sva_validation must be one of "
                         f"{SVA_VALIDATION_MODES}, got {mode!r}")
    if mode == "per_proposal" or len(proposals) <= 1:
        return _validate_svas_per_proposal(seed, proposals, bmc,
                                           coverage_out)

    golden = compile_source(seed.source)
    if not golden.ok or (golden.design is not None
                         and golden.design.assertions):
        # Pre-existing assertions would mix with proposal labels.
        return _validate_svas_per_proposal(seed, proposals, bmc,
                                           coverage_out)

    compiling: List[SvaProposal] = []
    rejected = 0
    for proposal in proposals:
        if compile_with_sva(seed.source, proposal.blocks()).ok:
            compiling.append(proposal)
        else:
            rejected += 1
    if not compiling:
        return [], rejected
    blocks: List[str] = []
    for proposal in compiling:
        blocks.extend(proposal.blocks())
    combined = compile_with_sva(seed.source, blocks)
    if not combined.ok:
        # Individually-valid proposals that clash when combined: ambiguous
        # attribution, use the reference path.
        valid, more_rejected = _validate_svas_per_proposal(
            seed, compiling, bmc, coverage_out)
        return valid, rejected + more_rejected
    combined_labels = {a.label for a in combined.design.assertions}
    if any(_assertion_label(p) not in combined_labels for p in compiling):
        # Label drift would silently accept failing proposals; don't risk it.
        valid, more_rejected = _validate_svas_per_proposal(
            seed, compiling, bmc, coverage_out)
        return valid, rejected + more_rejected
    batch = bounded_check_batch(combined.design, bmc)
    if coverage_out is not None and batch.coverage:
        coverage_out.update(batch.coverage)
    valid = [proposal for proposal in compiling
             if not batch.rejects(_assertion_label(proposal))]
    return valid, rejected + (len(compiling) - len(valid))


def process_design(seed: DesignSeed, sva_oracle: SvaOracle,
                   injector: BugInjector, bugs_per_design: int,
                   bmc: BmcConfig,
                   result: Optional[Stage2Result] = None,
                   sva_validation: str = "batched") -> Stage2Result:
    """Run Stage 2 for one design.

    Input contract: ``seed.source`` compiles (Stage 1 only forwards
    compiling designs through ``Stage1Result.compiled``).
    """
    result = result or Stage2Result()
    spec = write_spec(seed.source, seed.meta)

    proposals = sva_oracle.propose(seed)
    valid_svas, rejected = validate_svas(seed, proposals, bmc,
                                         mode=sva_validation)
    result.rejected_svas += rejected
    result.accepted_svas += len(valid_svas)
    if not valid_svas:
        return result
    sva_blocks: List[str] = []
    for proposal in valid_svas:
        sva_blocks.extend(proposal.blocks())

    records = injector.inject_many(seed.source, bugs_per_design, seed.name)
    for record in records:
        buggy_check = compile_source(record.buggy_source)
        if not buggy_check.ok:
            result.rejected_bugs_syntax += 1
            continue
        combined = compile_with_sva(record.buggy_source, sva_blocks)
        if not combined.ok:
            result.rejected_bugs_syntax += 1
            continue
        check = bounded_check(combined.design, bmc)
        if check.sim_error is not None:
            result.sim_error_count += 1
            continue
        if check.failed:
            module = combined.module
            buggy_with_sva = write_module(module)
            # Recompute the golden line inside the SVA-carrying source: SVA
            # insertion appends after the RTL, so RTL line numbers are
            # unchanged — assert that invariant instead of trusting it.
            buggy_lines = buggy_with_sva.splitlines()
            if buggy_lines[record.line - 1].strip() != record.buggy_line:
                result.sim_error_count += 1
                continue
            labels = sorted({f.label for f in check.failures})
            signals = _failing_assertion_signals(buggy_with_sva, labels)
            relation = classify_relation(parse_module(record.buggy_source),
                                         record.line, signals)
            result.sva_bug_entries.append(SvaBugEntry(
                record=record, spec=spec,
                buggy_source_with_sva=buggy_with_sva,
                logs=check.log_text(), failing_labels=labels,
                relation=relation, assertion_signals=signals))
        else:
            result.verilog_bug_entries.append(VerilogBugEntry(record, spec))
    return result


def stage2_unit(task: Stage2Task) -> Stage2Result:
    """Pure per-design Stage-2 work with unit-derived oracle/injector RNGs."""
    sva_oracle = SvaOracle(task.ctx.rng("sva"),
                           hallucination_rate=task.hallucination_rate)
    injector = BugInjector(task.ctx.rng("bugs"))
    return process_design(task.seed, sva_oracle, injector,
                          task.bugs_per_design, task.bmc,
                          sva_validation=task.sva_validation)


def _failing_assertion_signals(source_with_sva: str,
                               labels: List[str]) -> List[str]:
    """Union of identifiers in the failing assertions' property bodies."""
    from repro.bugs.classify import assertion_expr_signals
    module = parse_module(source_with_sva)
    signals: List[str] = []
    for label in labels:
        for name in assertion_expr_signals(module, label):
            if name not in signals:
                signals.append(name)
    return signals


def run_stage2(seeds: List[DesignSeed], seed: int = 0,
               bugs_per_design: int = 4,
               hallucination_rate: float = 0.15,
               bmc: Optional[BmcConfig] = None,
               engine: Optional[ExecutionEngine] = None,
               sva_validation: str = "batched") -> Stage2Result:
    """Run Stage 2 over a list of compiled designs.

    ``seed`` is the stage's global seed; each design's streams derive from
    it plus the module name, so output is identical across backends.
    """
    bmc = bmc or BmcConfig(depth=10, random_trials=24)
    tasks = [Stage2Task(seed=design,
                        ctx=StageContext(seed, STAGE_NAME, unit_id),
                        bugs_per_design=bugs_per_design,
                        hallucination_rate=hallucination_rate,
                        bmc=bmc,
                        sva_validation=sva_validation)
             for design, unit_id in zip(seeds, unit_ids(seeds))]
    if engine is None:
        unit_results = [stage2_unit(task) for task in tasks]
    else:
        unit_results = engine.map(
            stage2_unit, tasks, stage=STAGE_NAME,
            memo_key=lambda task: unit_memo_key(
                task.ctx.stage_name, task.ctx.unit_id, engine.memo_context,
                task.ctx.global_seed))
    result = Stage2Result()
    for unit_result in unit_results:
        result.merge_from(unit_result)
    return result
