"""Stage 2 — key components generation and validation.

For every compiled design:

1. The SVA oracle (Claude-3.5 surrogate) proposes assertions; each one is
   inserted into the *golden* design, compiled, and bounded-checked.
   Proposals that fail either step are hallucinations and are dropped.
2. The bug injector proposes mutations; mutants that fail compilation are
   dropped (the paper "employed the compiler again to identify and
   eliminate syntax errors introduced during the random bug generation").
3. Each surviving bug is checked against the validated SVAs.  If an
   assertion fires, the case becomes an SVA-Bug candidate (with its logs
   and Direct/Indirect classification); otherwise it becomes a Verilog-Bug
   entry — a real functional bug the available assertions failed to cover.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.bugs.classify import classify_relation
from repro.bugs.injector import BugInjector
from repro.corpus.meta import DesignSeed
from repro.datagen.records import SvaBugEntry, VerilogBugEntry
from repro.oracles.spec import write_spec
from repro.oracles.sva import SvaOracle, SvaProposal
from repro.sva.bmc import BmcConfig, bounded_check
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module


class Stage2Result:
    def __init__(self):
        self.sva_bug_entries: List[SvaBugEntry] = []
        self.verilog_bug_entries: List[VerilogBugEntry] = []
        self.rejected_svas = 0
        self.accepted_svas = 0
        self.rejected_bugs_syntax = 0
        self.sim_error_count = 0


def validate_svas(seed: DesignSeed, proposals: List[SvaProposal],
                  bmc: BmcConfig) -> "tuple[List[SvaProposal], int]":
    """Keep proposals that compile into and hold on the golden design."""
    valid: List[SvaProposal] = []
    rejected = 0
    for proposal in proposals:
        combined = compile_with_sva(seed.source, proposal.blocks())
        if not combined.ok:
            rejected += 1
            continue
        check = bounded_check(combined.design, bmc)
        if not check.passed_bound:
            rejected += 1
            continue
        valid.append(proposal)
    return valid, rejected


def process_design(seed: DesignSeed, sva_oracle: SvaOracle,
                   injector: BugInjector, bugs_per_design: int,
                   bmc: BmcConfig,
                   result: Optional[Stage2Result] = None) -> Stage2Result:
    """Run Stage 2 for one design."""
    result = result or Stage2Result()
    spec = write_spec(seed.source, seed.meta)

    proposals = sva_oracle.propose(seed)
    valid_svas, rejected = validate_svas(seed, proposals, bmc)
    result.rejected_svas += rejected
    result.accepted_svas += len(valid_svas)
    if not valid_svas:
        return result
    sva_blocks: List[str] = []
    for proposal in valid_svas:
        sva_blocks.extend(proposal.blocks())

    records = injector.inject_many(seed.source, bugs_per_design, seed.name)
    for record in records:
        buggy_check = compile_source(record.buggy_source)
        if not buggy_check.ok:
            result.rejected_bugs_syntax += 1
            continue
        combined = compile_with_sva(record.buggy_source, sva_blocks)
        if not combined.ok:
            result.rejected_bugs_syntax += 1
            continue
        check = bounded_check(combined.design, bmc)
        if check.sim_error is not None:
            result.sim_error_count += 1
            continue
        if check.failed:
            module = combined.module
            buggy_with_sva = write_module(module)
            # Recompute the golden line inside the SVA-carrying source: SVA
            # insertion appends after the RTL, so RTL line numbers are
            # unchanged — assert that invariant instead of trusting it.
            buggy_lines = buggy_with_sva.splitlines()
            if buggy_lines[record.line - 1].strip() != record.buggy_line:
                result.sim_error_count += 1
                continue
            labels = sorted({f.label for f in check.failures})
            signals = _failing_assertion_signals(buggy_with_sva, labels)
            relation = classify_relation(parse_module(record.buggy_source),
                                         record.line, signals)
            result.sva_bug_entries.append(SvaBugEntry(
                record=record, spec=spec,
                buggy_source_with_sva=buggy_with_sva,
                logs=check.log_text(), failing_labels=labels,
                relation=relation, assertion_signals=signals))
        else:
            result.verilog_bug_entries.append(VerilogBugEntry(record, spec))
    return result


def _failing_assertion_signals(source_with_sva: str,
                               labels: List[str]) -> List[str]:
    """Union of identifiers in the failing assertions' property bodies."""
    from repro.bugs.classify import assertion_expr_signals
    module = parse_module(source_with_sva)
    signals: List[str] = []
    for label in labels:
        for name in assertion_expr_signals(module, label):
            if name not in signals:
                signals.append(name)
    return signals


def run_stage2(seeds: List[DesignSeed], seed: int = 0,
               bugs_per_design: int = 4,
               hallucination_rate: float = 0.15,
               bmc: Optional[BmcConfig] = None) -> Stage2Result:
    """Run Stage 2 over a list of compiled designs."""
    rng = random.Random(seed)
    sva_oracle = SvaOracle(random.Random(seed + 1),
                           hallucination_rate=hallucination_rate)
    injector = BugInjector(random.Random(seed + 2))
    bmc = bmc or BmcConfig(depth=10, random_trials=24)
    result = Stage2Result()
    for design_seed in seeds:
        process_design(design_seed, sva_oracle, injector, bugs_per_design,
                       bmc, result)
    return result
