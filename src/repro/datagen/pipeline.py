"""Pipeline orchestrator: corpus -> Stage 1 -> Stage 2 -> split -> Stage 3.

``run_pipeline`` is the one-call reproduction of the paper's Section II at
a configurable scale, returning a :class:`DatasetBundle` with the three
training datasets, the machine half of the SVA-Eval benchmark, and the
bookkeeping statistics the paper reports (dataset sizes, CoT validity,
SVA/bug rejection counts).

The pipeline itself is a thin :class:`repro.engine.StageGraph`
declaration; the per-design work inside each stage fans out across an
:class:`repro.engine.ExecutionEngine` worker pool (``n_workers`` /
``backend`` knobs).  All randomness derives per
``(seed, module_name, stage_name)``, so ``n_workers=4`` produces a bundle
byte-identical to ``n_workers=1`` — assert with
:meth:`DatasetBundle.fingerprint`, which excludes only the volatile
engine/compile-cache stat keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import cov
from repro.corpus.generator import CorpusGenerator, resolve_families
from repro.datagen.records import (
    SvaBugEntry,
    SvaEvalCase,
    VerilogBugEntry,
    VerilogPTEntry,
    distribution_table,
)
from repro.datagen.split import assert_disjoint, split_by_module_name
from repro.datagen.stage1 import run_stage1
from repro.datagen.stage2 import SVA_VALIDATION_MODES, run_stage2
from repro.datagen.stage3 import run_stage3
from repro.engine import BACKENDS, ExecutionEngine, StageGraph, derive_rng
from repro.engine import metrics
from repro.sim.compiled import SIM_MODES
from repro.store import StoreConfig
from repro.sva.bmc import BmcConfig
from repro.verilog.compile import (
    configure_compile_cache,
    default_compile_cache,
)

#: ``DatasetBundle.stats`` keys that legitimately differ between backends
#: and between cold/warm runs (wall times, worker counts, cache and store
#: hit attribution, coverage-collection totals).
VOLATILE_STAT_KEYS = ("engine", "compile_cache", "store", "solve_profile",
                      "coverage")


@dataclass
class DatagenConfig:
    """Scale, rate and execution knobs.

    The paper runs on 108,971 corpus samples; ``n_designs`` scales the
    whole pipeline down while preserving every stage's behaviour (the
    bundle's ``stats`` record both our counts and the paper's).
    ``n_workers``/``backend`` control the engine's worker pool,
    ``compile_cache``/``compile_cache_size`` the content-hash compile
    memoization, and ``sim_mode`` the simulation tier (``"compiled"``
    evaluation programs vs the ``"interp"`` AST walker — see
    :mod:`repro.sim.compiled`); none of them changes the produced
    datasets, which is why none of them enters ``semantic_digest``.

    ``coverage`` attaches coverage collection (:mod:`repro.cov`) to every
    BMC run; the totals land in the volatile ``stats["coverage"]`` key.
    Like ``sim_mode`` it is a pure execution knob — it changes no dataset
    byte and stays out of ``semantic_digest``.

    ``template_families`` restricts corpus sampling to a subset of the
    registered template families (default: all) and ``family_weights``
    overrides per-family sampling weights; both are semantic knobs — they
    change which designs the corpus contains — and both are validated
    against the registry, so an unregistered family name fails fast
    instead of silently contributing zero designs.
    """

    n_designs: int = 60
    bugs_per_design: int = 4
    seed: int = 2025
    break_rate: float = 0.25
    hallucination_rate: float = 0.15
    train_fraction: float = 0.9
    bmc_depth: int = 10
    bmc_random_trials: int = 24
    n_workers: int = 1
    backend: str = "auto"
    compile_cache: bool = True
    compile_cache_size: int = 4096
    sim_mode: str = "compiled"
    coverage: bool = False
    sva_validation: str = "batched"
    template_families: Optional[Tuple[str, ...]] = None
    family_weights: Optional[Dict[str, float]] = None
    store: Optional[StoreConfig] = None

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` naming the first offending field."""
        for name, minimum in (("n_designs", 1), ("bugs_per_design", 1),
                              ("bmc_depth", 1), ("bmc_random_trials", 0),
                              ("n_workers", 1), ("compile_cache_size", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(
                    f"{name} must be an integer >= {minimum}, got {value!r}")
        for name in ("break_rate", "hallucination_rate", "train_fraction"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a number in [0, 1], got {value!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.sim_mode not in SIM_MODES:
            raise ValueError(
                f"sim_mode must be one of {SIM_MODES}, got {self.sim_mode!r}")
        if not isinstance(self.coverage, bool):
            raise ValueError(
                f"coverage must be a bool, got {self.coverage!r}")
        if self.sva_validation not in SVA_VALIDATION_MODES:
            raise ValueError(
                f"sva_validation must be one of {SVA_VALIDATION_MODES}, "
                f"got {self.sva_validation!r}")
        if self.store is not None:
            if not isinstance(self.store, StoreConfig):
                raise ValueError(
                    f"store must be a StoreConfig or None, got {self.store!r}")
            self.store.validate()
        # Raises ValueError on unknown family names / bad weights.
        resolve_families(self.template_families, self.family_weights)

    def semantic_digest(self) -> str:
        """SHA-256 over every knob that changes the produced datasets.

        This is the ``config_digest`` part of the stage-memoization key
        (see :func:`repro.store.unit_memo_key`): stored unit results are
        reused only when the run is semantically identical, while pure
        execution knobs (workers, backend, caches, the store itself) stay
        out so a parallel warm run hits what a serial cold run stored.

        The package version is part of the digest: stage implementations
        evolve across releases, and a long-lived shared store must never
        serve a unit result the current code would not produce.
        """
        import repro

        weights = (None if self.family_weights is None
                   else sorted(self.family_weights.items()))
        payload = json.dumps({
            "repro_version": repro.__version__,
            "n_designs": self.n_designs,
            "bugs_per_design": self.bugs_per_design,
            "seed": self.seed,
            "break_rate": self.break_rate,
            "hallucination_rate": self.hallucination_rate,
            "train_fraction": self.train_fraction,
            "bmc_depth": self.bmc_depth,
            "bmc_random_trials": self.bmc_random_trials,
            "sva_validation": self.sva_validation,
            "template_families": self.template_families,
            "family_weights": weights,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def make_corpus_generator(self) -> CorpusGenerator:
        return CorpusGenerator(seed=self.seed,
                               families=self.template_families,
                               weights=self.family_weights)

    def bmc(self) -> BmcConfig:
        return BmcConfig(depth=self.bmc_depth,
                         random_trials=self.bmc_random_trials,
                         seed=self.seed, sim_mode=self.sim_mode,
                         coverage=self.coverage)

    def make_engine(self, store=None) -> ExecutionEngine:
        """An engine whose workers inherit this config's cache knobs.

        ``store`` (built from ``self.store`` by the pipeline) enables
        stage-level memoization in the parent; process-pool workers
        additionally attach their compile caches to the same disk
        directory via the initializer, so compile artifacts are shared
        across the whole worker fleet.
        """
        store_path = self.store.store_path() if self.store else ""
        store_bytes = self.store.max_bytes if store_path else 0
        return ExecutionEngine(
            n_workers=self.n_workers, backend=self.backend,
            store=store, memo_context=self.semantic_digest(),
            initializer=configure_compile_cache,
            initargs=(self.compile_cache, self.compile_cache_size,
                      store_path, store_bytes))


@dataclass
class DatasetBundle:
    """Everything the training and evaluation phases consume."""

    verilog_pt: List[VerilogPTEntry] = field(default_factory=list)
    verilog_bug: List[VerilogBugEntry] = field(default_factory=list)
    sva_bug_train: List[SvaBugEntry] = field(default_factory=list)
    sva_eval_machine: List[SvaEvalCase] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        lines = ["DatasetBundle:"]
        lines.append(f"  Verilog-PT entries:   {len(self.verilog_pt)} "
                     f"(paper: 22,646)")
        lines.append(f"  Verilog-Bug entries:  {len(self.verilog_bug)} "
                     f"(paper: 36,650)")
        lines.append(f"  SVA-Bug train:        {len(self.sva_bug_train)} "
                     f"(paper: 7,842)")
        lines.append(f"  SVA-Eval-Machine:     {len(self.sva_eval_machine)} "
                     f"(paper: 877)")
        rate = self.stats.get("cot_validity_rate")
        if isinstance(rate, float):
            lines.append(f"  CoT validity:         {rate:.2%} (paper: 74.55%)")
        return "\n".join(lines)

    # -- determinism ---------------------------------------------------------

    def comparable(self) -> Dict[str, object]:
        """A plain-data projection of every entry and every non-volatile
        stat, suitable for cross-run equality checks."""

        def record_data(record) -> Tuple:
            return (record.design_name, record.buggy_source,
                    record.golden_source, record.line, record.buggy_line,
                    record.fixed_line, record.op_name, record.kind.value,
                    record.conditionality.value, record.description)

        def sva_entry_data(entry: SvaBugEntry) -> Tuple:
            return (record_data(entry.record), entry.spec,
                    entry.buggy_source_with_sva, entry.logs,
                    list(entry.failing_labels), entry.relation.value,
                    list(entry.assertion_signals), entry.cot)

        return {
            "verilog_pt": [(e.source, e.spec, e.analysis, e.compiles,
                            e.break_kind) for e in self.verilog_pt],
            "verilog_bug": [(record_data(e.record), e.spec)
                            for e in self.verilog_bug],
            "sva_bug_train": [sva_entry_data(e) for e in self.sva_bug_train],
            "sva_eval_machine": [(c.case_id, c.origin, sva_entry_data(c.entry))
                                 for c in self.sva_eval_machine],
            "stats": {key: value for key, value in self.stats.items()
                      if key not in VOLATILE_STAT_KEYS},
        }

    def fingerprint(self) -> str:
        """SHA-256 over :meth:`comparable` — equal fingerprints mean
        byte-identical datasets (modulo volatile engine/cache stats)."""
        payload = json.dumps(self.comparable(), sort_keys=True,
                             default=str).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


def build_stage_graph(config: DatagenConfig) -> StageGraph:
    """Declare the Section-II pipeline as a stage DAG.

    Per-design fan-out happens inside the stage bodies via
    ``inputs.engine``; the graph stays a readable five-node declaration::

        corpus -> stage1 -> stage2 -> split -> stage3
    """
    graph = StageGraph("datagen")

    # The corpus is a source node that fans out like any other stage:
    # every design's template stream derives from its design_id alone.
    graph.add_stage("corpus", lambda inputs: config.make_corpus_generator()
                    .generate(config.n_designs, engine=inputs.engine))

    graph.add_stage("stage1", lambda inputs: run_stage1(
        inputs["corpus"], break_rate=config.break_rate,
        global_seed=config.seed, engine=inputs.engine),
        deps=("corpus",))

    graph.add_stage("stage2", lambda inputs: run_stage2(
        inputs["stage1"].compiled, seed=config.seed,
        bugs_per_design=config.bugs_per_design,
        hallucination_rate=config.hallucination_rate,
        bmc=config.bmc(), engine=inputs.engine,
        sva_validation=config.sva_validation),
        deps=("stage1",))

    def split_stage(inputs):
        train, test = split_by_module_name(
            inputs["stage2"].sva_bug_entries,
            derive_rng(config.seed, "split"),
            train_fraction=config.train_fraction)
        assert_disjoint(train, test)
        return train, test

    graph.add_stage("split", split_stage, deps=("stage2",))

    graph.add_stage("stage3", lambda inputs: run_stage3(
        inputs["split"][0], seed=config.seed, engine=inputs.engine),
        deps=("split",))

    return graph


def run_pipeline(config: DatagenConfig) -> DatasetBundle:
    """Run the full Section-II pipeline at the configured scale.

    With ``config.store`` pointing at a populated disk directory, stage
    units whose results the store already holds are skipped entirely
    (cross-run incremental execution); the produced bundle is
    byte-identical either way — a warm run and a cold run share one
    :meth:`DatasetBundle.fingerprint`.
    """
    config.validate()
    store = config.store.make_store() if config.store is not None else None
    store_path = config.store.store_path() if config.store else ""
    previous_cache = configure_compile_cache(
        enabled=config.compile_cache, max_entries=config.compile_cache_size,
        store_path=store_path,
        store_max_bytes=config.store.max_bytes if store_path else 0)
    cache_before = default_compile_cache().counters()
    profile_before = metrics.profile_counters()
    coverage_before = cov.coverage_counters()
    try:
        with config.make_engine(store=store) as engine:
            outputs = build_stage_graph(config).run(engine)
            bundle = _assemble(config, outputs)
            _attach_execution_stats(bundle, engine, cache_before, store,
                                    profile_before, coverage_before)
    finally:
        configure_compile_cache(*previous_cache)
    return bundle


def _assemble(config: DatagenConfig, outputs: Dict[str, object]
              ) -> DatasetBundle:
    stage1, stage2 = outputs["stage1"], outputs["stage2"]
    stage3 = outputs["stage3"]
    _, test = outputs["split"]
    corpus_families: Dict[str, int] = {}
    for design in outputs["corpus"]:
        family = design.meta.family
        corpus_families[family] = corpus_families.get(family, 0) + 1

    bundle = DatasetBundle()
    bundle.verilog_pt = stage1.pt_entries
    bundle.verilog_bug = stage2.verilog_bug_entries
    bundle.sva_bug_train = stage3.entries
    bundle.sva_eval_machine = [
        SvaEvalCase(f"machine_{i:04d}", entry, origin="machine")
        for i, entry in enumerate(test)
    ]
    bundle.stats = {
        "n_designs": config.n_designs,
        "corpus_families": corpus_families,
        "stage1_filtered": stage1.filtered_count,
        "stage1_duplicates": stage1.duplicate_count,
        "stage1_failed_compile": stage1.failed_compile_count,
        "stage2_accepted_svas": stage2.accepted_svas,
        "stage2_rejected_svas": stage2.rejected_svas,
        "stage2_rejected_bugs_syntax": stage2.rejected_bugs_syntax,
        "stage2_sim_errors": stage2.sim_error_count,
        "cot_validity_rate": stage3.validity_rate,
        "train_fraction_target": config.train_fraction,
        "sva_bug_distribution": distribution_table(
            bundle.sva_bug_train),
        "sva_eval_distribution": distribution_table(
            [case.entry for case in bundle.sva_eval_machine]),
    }
    return bundle


def _attach_execution_stats(bundle: DatasetBundle, engine: ExecutionEngine,
                            cache_before: Dict[str, int],
                            store=None,
                            profile_before: Optional[Dict[str, int]] = None,
                            coverage_before: Optional[Dict[str, int]] = None
                            ) -> None:
    """Add the volatile ``engine`` / ``compile_cache`` / ``store`` /
    ``solve_profile`` / ``coverage`` keys."""
    if store is None:
        bundle.stats["store"] = {"enabled": False}
    else:
        stages = engine.stats()["stages"].values()
        bundle.stats["store"] = {
            "enabled": True,
            "counters": store.counters(),
            "stage_memo_hits": sum(s.get("memo_hits", 0) for s in stages),
            "stage_memo_misses": sum(s.get("memo_misses", 0)
                                     for s in stages),
        }
    cache_after = default_compile_cache().counters()
    totals = {key: cache_after.get(key, 0) - cache_before.get(key, 0)
              for key in cache_after}
    if engine.backend == "process":
        # Worker-side counters never reach this process's cache; the
        # engine aggregated their per-unit deltas instead.
        for key, value in engine.metric_totals().get(
                "compile_cache", {}).items():
            totals[key] = totals.get(key, 0) + value
    served = totals.get("hits", 0) + totals.get("store_hits", 0)
    lookups = served + totals.get("misses", 0)
    totals["hit_rate"] = (served / lookups) if lookups else 0.0
    bundle.stats["compile_cache"] = totals
    # Per-phase solve wall times (microseconds) from the run: local delta
    # plus, under a process pool, the per-unit deltas the engine shipped
    # back from its workers.
    profile_before = profile_before or {}
    profile_after = metrics.profile_counters()
    profile = {key: profile_after.get(key, 0) - profile_before.get(key, 0)
               for key in profile_after}
    if engine.backend == "process":
        for key, value in engine.metric_totals().get(
                "solve_profile", {}).items():
            profile[key] = profile.get(key, 0) + value
    bundle.stats["solve_profile"] = profile
    # Coverage-collection totals from the run, same local-delta plus
    # worker-delta merge as the solve profile.  All zeros unless the
    # config's ``coverage`` knob was on.
    coverage_before = coverage_before or {}
    coverage_after = cov.coverage_counters()
    coverage = {key: coverage_after.get(key, 0) - coverage_before.get(key, 0)
                for key in coverage_after}
    if engine.backend == "process":
        for key, value in engine.metric_totals().get(
                "coverage", {}).items():
            coverage[key] = coverage.get(key, 0) + value
    bundle.stats["coverage"] = coverage
    bundle.stats["engine"] = engine.stats()
