"""Pipeline orchestrator: corpus -> Stage 1 -> Stage 2 -> split -> Stage 3.

``run_pipeline`` is the one-call reproduction of the paper's Section II at
a configurable scale, returning a :class:`DatasetBundle` with the three
training datasets, the machine half of the SVA-Eval benchmark, and the
bookkeeping statistics the paper reports (dataset sizes, CoT validity,
SVA/bug rejection counts).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.corpus.generator import CorpusGenerator
from repro.datagen.records import (
    SvaBugEntry,
    SvaEvalCase,
    VerilogBugEntry,
    VerilogPTEntry,
    distribution_table,
)
from repro.datagen.split import assert_disjoint, split_by_module_name
from repro.datagen.stage1 import run_stage1
from repro.datagen.stage2 import run_stage2
from repro.datagen.stage3 import run_stage3
from repro.sva.bmc import BmcConfig


class DatagenConfig:
    """Scale and rate knobs.

    The paper runs on 108,971 corpus samples; ``n_designs`` scales the
    whole pipeline down while preserving every stage's behaviour (the
    bundle's ``stats`` record both our counts and the paper's).
    """

    def __init__(self, n_designs: int = 60, bugs_per_design: int = 4,
                 seed: int = 2025, break_rate: float = 0.25,
                 hallucination_rate: float = 0.15,
                 train_fraction: float = 0.9,
                 bmc_depth: int = 10, bmc_random_trials: int = 24):
        self.n_designs = n_designs
        self.bugs_per_design = bugs_per_design
        self.seed = seed
        self.break_rate = break_rate
        self.hallucination_rate = hallucination_rate
        self.train_fraction = train_fraction
        self.bmc_depth = bmc_depth
        self.bmc_random_trials = bmc_random_trials

    def bmc(self) -> BmcConfig:
        return BmcConfig(depth=self.bmc_depth,
                         random_trials=self.bmc_random_trials,
                         seed=self.seed)


class DatasetBundle:
    """Everything the training and evaluation phases consume."""

    def __init__(self):
        self.verilog_pt: List[VerilogPTEntry] = []
        self.verilog_bug: List[VerilogBugEntry] = []
        self.sva_bug_train: List[SvaBugEntry] = []
        self.sva_eval_machine: List[SvaEvalCase] = []
        self.stats: Dict[str, object] = {}

    def summary(self) -> str:
        lines = ["DatasetBundle:"]
        lines.append(f"  Verilog-PT entries:   {len(self.verilog_pt)} "
                     f"(paper: 22,646)")
        lines.append(f"  Verilog-Bug entries:  {len(self.verilog_bug)} "
                     f"(paper: 36,650)")
        lines.append(f"  SVA-Bug train:        {len(self.sva_bug_train)} "
                     f"(paper: 7,842)")
        lines.append(f"  SVA-Eval-Machine:     {len(self.sva_eval_machine)} "
                     f"(paper: 877)")
        rate = self.stats.get("cot_validity_rate")
        if isinstance(rate, float):
            lines.append(f"  CoT validity:         {rate:.2%} (paper: 74.55%)")
        return "\n".join(lines)


def run_pipeline(config: DatagenConfig) -> DatasetBundle:
    """Run the full Section-II pipeline at the configured scale."""
    bundle = DatasetBundle()

    generator = CorpusGenerator(seed=config.seed)
    seeds = generator.generate(config.n_designs)

    stage1 = run_stage1(seeds, random.Random(config.seed + 10),
                        break_rate=config.break_rate)
    bundle.verilog_pt = stage1.pt_entries

    stage2 = run_stage2(stage1.compiled, seed=config.seed + 20,
                        bugs_per_design=config.bugs_per_design,
                        hallucination_rate=config.hallucination_rate,
                        bmc=config.bmc())
    bundle.verilog_bug = stage2.verilog_bug_entries

    train, test = split_by_module_name(
        stage2.sva_bug_entries, random.Random(config.seed + 30),
        train_fraction=config.train_fraction)
    assert_disjoint(train, test)

    stage3 = run_stage3(train, seed=config.seed + 40)
    bundle.sva_bug_train = stage3.entries

    bundle.sva_eval_machine = [
        SvaEvalCase(f"machine_{i:04d}", entry, origin="machine")
        for i, entry in enumerate(test)
    ]

    bundle.stats = {
        "n_designs": config.n_designs,
        "stage1_filtered": stage1.filtered_count,
        "stage1_duplicates": stage1.duplicate_count,
        "stage1_failed_compile": stage1.failed_compile_count,
        "stage2_accepted_svas": stage2.accepted_svas,
        "stage2_rejected_svas": stage2.rejected_svas,
        "stage2_rejected_bugs_syntax": stage2.rejected_bugs_syntax,
        "stage2_sim_errors": stage2.sim_error_count,
        "cot_validity_rate": stage3.validity_rate,
        "train_fraction_target": config.train_fraction,
        "sva_bug_distribution": distribution_table(
            bundle.sva_bug_train),
        "sva_eval_distribution": distribution_table(
            [case.entry for case in bundle.sva_eval_machine]),
    }
    return bundle
