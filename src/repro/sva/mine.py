"""Structural hint mining for hint-less designs.

The serving layer accepts raw Verilog with no template metadata, so it has
no :class:`SvaHint` list for the oracle to propose from.  This module
mines candidate invariants directly from the elaborated design: every
simple continuous assignment ``assign y = <expr>;`` yields the candidate
property ``y == (<expr>)`` — a combinational equality that holds at every
clock sample on the golden design.  Mined candidates go through exactly
the same validation as oracle proposals (insert, compile, bounded check),
so a candidate the checker cannot confirm is dropped, never served.

Mining is deliberately conservative: it requires the corpus clock/reset
convention (``clk``/``rst_n`` signals) because the rendered properties
are clocked on ``posedge clk`` and disabled under ``!rst_n``; designs
outside the convention simply mine zero hints.
"""

from __future__ import annotations

from typing import List

from repro.corpus.meta import SvaHint
from repro.verilog import ast
from repro.verilog.elaborator import Design
from repro.verilog.writer import write_expr

#: The clock/reset naming convention the rendered properties assume.
CLOCK_NAME = "clk"
RESET_NAME = "rst_n"


def mine_invariant_hints(design: Design, limit: int = 8) -> List[SvaHint]:
    """Candidate invariants from simple continuous assignments.

    Returns at most ``limit`` hints in source order.  Candidates are
    *plausible*, not guaranteed: the caller must validate them with the
    bounded checker exactly like oracle proposals.
    """
    symbols = design.symbols
    if CLOCK_NAME not in symbols or RESET_NAME not in symbols:
        return []
    hints: List[SvaHint] = []
    for assign in design.assigns:
        if len(hints) >= limit:
            break
        target = assign.target
        if not isinstance(target, ast.Ident):
            continue  # bit/part-select and concat targets: skip
        name = target.name
        if name in (CLOCK_NAME, RESET_NAME):
            continue
        reads = set(ast.collect_idents(assign.value))
        if CLOCK_NAME in reads:
            continue  # clock-dependent expressions are not invariants
        expr_text = write_expr(assign.value)
        hints.append(SvaHint(
            f"mined_{name}_def",
            consequent=f"{name} == ({expr_text})",
            message=f"{name} must track its combinational definition"))
    return hints
