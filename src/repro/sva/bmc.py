"""Bounded model checking — the SymbiYosys substitute.

The datagen pipeline asks two questions of the checker:

1. *SVA validity*: does the assertion hold on the golden design within the
   bound?  (Used to discard hallucinated assertions.)
2. *Bug effectiveness*: does the buggy design violate the assertion, and
   with what counterexample log?  (Used to build the SVA-Bug dataset and
   the failure logs that become model input.)

Strategy: exhaustive stimulus enumeration when the input space is small
enough (``total_input_bits * depth <= exhaustive_bits``), otherwise a
deterministic portfolio of directed patterns (constants, toggling, walking
ones) plus seeded random search.  Bounded, like any BMC: ``proven`` is
never claimed, only "no counterexample within the bound" — which is also
all the paper's pipeline needs.
"""

from __future__ import annotations

import random
from time import perf_counter
from typing import Iterable, List, Optional

from repro.cov import CoverageSink, accumulate_totals
from repro.engine import metrics
from repro.sim.compiled import SIM_MODES, make_simulator
from repro.sim.eval import EvalError
from repro.sim.simulator import SimulationError
from repro.sim.stimulus import (
    Stimulus,
    constant_sequence,
    enumerate_exhaustive,
    reset_sequence,
    toggle_sequence,
    walking_ones_sequence,
)
from repro.sim.trace import Trace
from repro.sva.monitor import (
    AssertionFailure,
    IncrementalChecker,
    check_assertions,
)
from repro.verilog.elaborator import Design


class BmcConfig:
    """Search budget for :func:`bounded_check`.

    ``sim_mode`` selects the execution tier (``"compiled"`` programs or
    the ``"interp"`` AST walker — see :mod:`repro.sim.compiled`); it is
    an execution knob, not a semantic one, and must never change any
    verdict.  ``coverage`` attaches a :class:`repro.cov.CoverageSink` to
    the run — also a pure execution knob: verdicts are unchanged, the
    result just additionally carries a coverage report.
    """

    def __init__(self, depth: int = 12, random_trials: int = 64,
                 exhaustive_bits: int = 12, reset_cycles: int = 2,
                 seed: int = 2025, sim_mode: str = "compiled",
                 coverage: bool = False):
        if sim_mode not in SIM_MODES:
            raise ValueError(
                f"sim_mode must be one of {SIM_MODES}, got {sim_mode!r}")
        self.depth = depth
        self.random_trials = random_trials
        self.exhaustive_bits = exhaustive_bits
        self.reset_cycles = reset_cycles
        self.seed = seed
        self.sim_mode = sim_mode
        self.coverage = bool(coverage)


class BmcResult:
    """Outcome of a bounded check.

    ``failed`` is True when a counterexample was found; ``failures`` holds
    the monitor records from the failing trace, ``trace`` the trace itself
    and ``stimulus`` the input program that produced it.  ``coverage`` is
    the plain-dict (picklable) coverage report when the config asked for
    collection, else ``None``.
    """

    def __init__(self):
        self.failed = False
        self.failures: List[AssertionFailure] = []
        self.trace: Optional[Trace] = None
        self.stimulus: Optional[Stimulus] = None
        self.stimuli_tried = 0
        self.sim_error: Optional[str] = None
        self.coverage: Optional[dict] = None

    @property
    def passed_bound(self) -> bool:
        """No counterexample within the search budget (not a proof)."""
        return not self.failed and self.sim_error is None

    def log_text(self, max_lines: int = 4) -> str:
        """The assertion-failure log as it appears in dataset entries."""
        lines = [f.log_line() for f in self.failures[:max_lines]]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        if self.sim_error:
            return f"BmcResult(sim_error={self.sim_error!r})"
        state = "FAIL" if self.failed else "pass(bound)"
        return f"BmcResult({state}, tried={self.stimuli_tried})"


class BmcBatchResult:
    """Per-assertion outcome of one bounded check over a shared design.

    ``failed_labels`` holds assertion labels with a counterexample within
    the bound, ``error_labels`` maps labels whose property the monitor
    could not evaluate (hallucinated constructs) to the error text, and
    ``design_error`` reports an RTL-level simulation failure that voids
    every assertion alike.
    """

    __slots__ = ("failed_labels", "error_labels", "stimuli_tried",
                 "design_error", "coverage")

    def __init__(self):
        self.failed_labels: set = set()
        self.error_labels: dict = {}
        self.stimuli_tried = 0
        self.design_error: Optional[str] = None
        self.coverage: Optional[dict] = None

    def rejects(self, label: str) -> bool:
        """Would an individual bounded check have rejected this label?"""
        return (self.design_error is not None
                or label in self.failed_labels
                or label in self.error_labels)

    def __repr__(self) -> str:  # pragma: no cover
        if self.design_error:
            return f"BmcBatchResult(design_error={self.design_error!r})"
        return (f"BmcBatchResult({len(self.failed_labels)} failed, "
                f"{len(self.error_labels)} errored, "
                f"tried={self.stimuli_tried})")


def _stimulus_portfolio(design: Design, config: BmcConfig) -> Iterable[Stimulus]:
    """Directed patterns first (cheap, catch most corpus bugs), then random."""
    yield constant_sequence(design, config.depth, 1, config.reset_cycles)
    yield constant_sequence(design, config.depth, 0, config.reset_cycles)
    yield toggle_sequence(design, config.depth, 0, config.reset_cycles)
    yield toggle_sequence(design, config.depth, 1, config.reset_cycles)
    yield walking_ones_sequence(design, config.depth, config.reset_cycles)
    rng = random.Random(config.seed)
    for _ in range(config.random_trials):
        yield reset_sequence(design, config.depth, rng, config.reset_cycles)


def _candidate_stimuli(design: Design, config: BmcConfig) -> Iterable[Stimulus]:
    """The shared candidate selection for every bounded check.

    :func:`bounded_check` and :func:`bounded_check_batch` must draw the
    exact same stimuli or their verdict-equivalence contract breaks, so
    the exhaustive-bits decision lives only here.
    """
    total_bits = sum(s.width for s in design.free_inputs())
    if total_bits * config.depth <= config.exhaustive_bits:
        return enumerate_exhaustive(design, config.depth,
                                    config.reset_cycles)
    return _stimulus_portfolio(design, config)


def bounded_check(design: Design, config: Optional[BmcConfig] = None) -> BmcResult:
    """Search for an assertion counterexample within the budget."""
    config = config or BmcConfig()
    result = BmcResult()
    if not design.assertions:
        return result

    start = perf_counter()
    sim_seconds = 0.0
    monitor_seconds = 0.0
    sink = CoverageSink.for_design(design) if config.coverage else None
    quality: Optional[dict] = {} if config.coverage else None
    try:
        candidates = _candidate_stimuli(design, config)
        simulator = make_simulator(design, config.sim_mode)
        if sink is not None:
            simulator.cov = sink
        compiled_props = config.sim_mode == "compiled"
        for stimulus in candidates:
            result.stimuli_tried += 1
            try:
                t0 = perf_counter()
                trace = simulator.run(stimulus)
                t1 = perf_counter()
                sim_seconds += t1 - t0
                failures = check_assertions(design, trace, config.reset_cycles,
                                            compiled=compiled_props,
                                            quality=quality)
                monitor_seconds += perf_counter() - t1
            except (SimulationError, EvalError) as exc:
                # Hallucinated SVAs can reference constructs the monitor
                # cannot evaluate; that is a rejection, not a crash.
                result.sim_error = str(exc)
                return result
            if failures:
                result.failed = True
                result.failures = failures
                result.trace = trace
                result.stimulus = stimulus
                return result
        return result
    finally:
        if sink is not None:
            result.coverage = sink.report(quality)
            accumulate_totals(result.coverage)
        metrics.add_time("simulate", sim_seconds)
        metrics.add_time("monitor", monitor_seconds)
        metrics.add_time("bmc", perf_counter() - start)


def bounded_check_batch(design: Design,
                        config: Optional[BmcConfig] = None) -> BmcBatchResult:
    """One portfolio run scoring every assertion independently.

    Equivalent to running :func:`bounded_check` once per assertion on a
    design carrying only that assertion: the stimulus portfolio depends
    only on the design's free inputs (assertions add none), traces are
    identical, and the monitor evaluates each assertion in isolation — so
    ``rejects(label)`` reproduces the individual ``not passed_bound``
    verdict while simulating the shared RTL once instead of N times.

    Execution is incremental with early exit: one compiled program is
    reused across every stimulus, SVA monitors are evaluated per cycle as
    the trace grows (:class:`IncrementalChecker`), a label resolves at its
    first definitive event (failure or property ``EvalError``) in
    start-cycle order, and simulation stops — mid-stimulus if need be —
    the moment every label has a verdict.
    """
    config = config or BmcConfig()
    result = BmcBatchResult()
    if not design.assertions:
        return result

    start = perf_counter()
    sim_seconds = 0.0
    monitor_seconds = 0.0
    sink = CoverageSink.for_design(design) if config.coverage else None
    quality: Optional[dict] = {} if config.coverage else None
    try:
        candidates = _candidate_stimuli(design, config)
        simulator = make_simulator(design, config.sim_mode)
        if sink is not None:
            simulator.cov = sink
        compiled_props = config.sim_mode == "compiled"
        pending = list(design.assertions)
        for stimulus in candidates:
            result.stimuli_tried += 1
            cycles = simulator.run_iter(stimulus)
            t0 = perf_counter()
            try:
                trace = next(cycles)
            except (SimulationError, EvalError) as exc:
                # RTL-level problem: every per-assertion run would hit it.
                result.design_error = str(exc)
                return result
            finally:
                sim_seconds += perf_counter() - t0
            checker = IncrementalChecker(design, trace, pending,
                                         config.reset_cycles + 1,
                                         compiled=compiled_props,
                                         quality=quality)
            while True:
                t0 = perf_counter()
                try:
                    next(cycles)
                except StopIteration:
                    sim_seconds += perf_counter() - t0
                    t0 = perf_counter()
                    checker.finalize()
                    monitor_seconds += perf_counter() - t0
                    break
                except (SimulationError, EvalError) as exc:
                    sim_seconds += perf_counter() - t0
                    result.design_error = str(exc)
                    return result
                sim_seconds += perf_counter() - t0
                t0 = perf_counter()
                checker.advance()
                monitor_seconds += perf_counter() - t0
                if checker.all_resolved():
                    break  # every pending label has a verdict: stop this run
            result.failed_labels |= checker.failed
            result.error_labels.update(checker.errors)
            pending = [assertion for assertion in pending
                       if assertion.label not in result.failed_labels
                       and assertion.label not in result.error_labels]
            if not pending:
                break  # every assertion resolved; no verdict can change
        return result
    finally:
        if sink is not None:
            result.coverage = sink.report(quality)
            accumulate_totals(result.coverage)
        metrics.add_time("simulate", sim_seconds)
        metrics.add_time("monitor", monitor_seconds)
        metrics.add_time("bmc", perf_counter() - start)


def holds_within_bound(design: Design, config: Optional[BmcConfig] = None) -> bool:
    """True when no assertion counterexample exists within the budget."""
    return bounded_check(design, config).passed_bound
