"""Runtime assertion checking over simulation traces.

Semantics (finite-trace, weak): an obligation that runs past the end of the
trace is *undetermined* and does not fail — mirroring how a simulator only
reports failures it actually observed, while the BMC driver picks trace
depths long enough for obligations to resolve.

Evaluation is 3-valued: a consequent that samples X neither passes nor
fails by value; we treat "not definitely true" as a failure only when all
sampled bits are known.  Reset periods are excluded the standard way via
``disable iff``.
"""

from __future__ import annotations

import threading
import weakref
from typing import List, Optional

from repro.cov.collector import new_quality
from repro.sim.compiled import _FALSE, _TRUE, _X1, UnsupportedDesign, _Lowerer
from repro.sim.eval import EvalError, Evaluator
from repro.sim.trace import Trace
from repro.sim.values import FourState
from repro.verilog import ast
from repro.verilog.elaborator import Design, ResolvedAssertion


class AssertionFailure:
    """One observed assertion failure."""

    __slots__ = ("module", "label", "property_name", "start_cycle", "fail_cycle",
                 "message")

    def __init__(self, module: str, label: str, property_name: str,
                 start_cycle: int, fail_cycle: int, message: str):
        self.module = module
        self.label = label
        self.property_name = property_name
        self.start_cycle = start_cycle
        self.fail_cycle = fail_cycle
        self.message = message

    def log_line(self) -> str:
        """The log format our datasets carry (modelled on simulator output)."""
        text = (f"failed assertion {self.module}.{self.label} "
                f"at cycle {self.fail_cycle}")
        if self.message:
            text += f": {self.message}"
        return text

    def __repr__(self) -> str:  # pragma: no cover
        return f"AssertionFailure({self.log_line()!r})"


class _TraceEnv:
    """Evaluator environment bound to one trace cycle, with temporal
    system-function support.

    Environments (and their evaluators) are memoized per cycle in a
    registry shared across the whole property check, so the per-cycle /
    per-property loops construct each :class:`Evaluator` once instead of
    once per visit.  An env only holds its cycle *index* — it reads the
    trace lazily, so memoized envs stay valid while a trace is still
    being appended to (the incremental checker relies on this).
    """

    def __init__(self, trace: Trace, cycle: int, params, registry=None):
        self.trace = trace
        self.cycle = cycle
        self.params = params
        self._registry = registry if registry is not None else {}
        self._registry[cycle] = self
        self._evaluator: "Evaluator | None" = None

    def evaluator(self) -> Evaluator:
        evaluator = self._evaluator
        if evaluator is None:
            evaluator = Evaluator(self._lookup, self.params,
                                  sys_hook=self._sys_hook)
            self._evaluator = evaluator
        return evaluator

    def _lookup(self, name: str) -> FourState:
        try:
            return self.trace[self.cycle][name]
        except KeyError:
            raise EvalError(f"no such signal '{name}' in trace") from None

    def _at(self, cycle: int) -> "_TraceEnv":
        env = self._registry.get(cycle)
        if env is None:
            env = _TraceEnv(self.trace, cycle, self.params, self._registry)
        return env

    def _sys_hook(self, name: str, args) -> FourState:
        if name == "$past":
            depth = 1
            if len(args) > 1:
                folded = args[1]
                if isinstance(folded, ast.Number):
                    depth = folded.value
            past_cycle = self.cycle - depth
            if past_cycle < 0:
                return FourState.unknown(1)
            return self._at(past_cycle).evaluator().eval(args[0])
        if name in ("$rose", "$fell", "$stable"):
            if self.cycle == 0:
                return FourState.unknown(1)
            now = self.evaluator().eval(args[0])
            before = self._at(self.cycle - 1).evaluator().eval(args[0])
            if name == "$stable":
                return now.case_eq(before)
            now_bit, before_bit = now.bit(0), before.bit(0)
            if now_bit.has_x or before_bit.has_x:
                return FourState.unknown(1)
            if name == "$rose":
                return FourState.from_bool(before_bit.value == 0 and now_bit.value == 1)
            return FourState.from_bool(before_bit.value == 1 and now_bit.value == 0)
        raise EvalError(f"system function {name} unsupported in properties")


class _PropLowerer(_Lowerer):
    """Trace-backed variant of the compiled tier's expression lowerer.

    Reuses every operator combinator of :class:`repro.sim.compiled._Lowerer`
    unchanged; only the environment differs — ``env`` is ``(trace, cycle)``
    instead of a slot list, and the temporal system functions
    (``$past``/``$rose``/``$fell``/``$stable``) re-enter sub-closures at a
    shifted cycle, mirroring :meth:`_TraceEnv._sys_hook` verdict for
    verdict.  Expressions the lowerer cannot compile fall back to the
    interpreted :class:`_TraceEnv` path per expression.
    """

    def _lower_ident(self, expr: ast.Ident):
        name = expr.name
        if name in self.params:
            value = FourState(32, self.params[name] & 0xFFFFFFFF)
            return (lambda env: value), True
        if name not in self.slots:
            return self._raiser(
                EvalError, f"no such signal '{name}' in trace"), False
        return (lambda env: env[0].snapshots[env[1]][name]), False

    def _lower_syscall(self, expr: ast.SysCall):
        name = expr.name
        if name not in ("$past", "$rose", "$fell", "$stable"):
            if name in ("$countones", "$onehot", "$onehot0", "$signed",
                        "$unsigned"):
                return super()._lower_syscall(expr)
            return self._raiser(
                EvalError,
                f"system function {name} unsupported in properties"), False
        if not expr.args:
            # The interpreted hook would crash on args[0]; don't compile.
            raise UnsupportedDesign(f"{name} with no arguments")
        arg, _ = self._lower_expr(expr.args[0])
        if name == "$past":
            depth = 1
            if len(expr.args) > 1 and isinstance(expr.args[1], ast.Number):
                depth = expr.args[1].value

            def past(env):
                cycle = env[1] - depth
                if cycle < 0:
                    return _X1
                return arg((env[0], cycle))
            return past, False
        if name == "$stable":
            def stable(env):
                if env[1] == 0:
                    return _X1
                return arg(env).case_eq(arg((env[0], env[1] - 1)))
            return stable, False
        rising = name == "$rose"

        def edge(env):
            if env[1] == 0:
                return _X1
            now = arg(env).bit(0)
            before = arg((env[0], env[1] - 1)).bit(0)
            if now.has_x or before.has_x:
                return _X1
            if rising:
                return _TRUE if before.value == 0 and now.value == 1 else _FALSE
            return _TRUE if before.value == 1 and now.value == 0 else _FALSE
        return edge, False


class _PropProgram:
    """Per-design cache of compiled property closures.

    Two levels: :meth:`expr_fn` compiles boolean-layer expressions,
    :meth:`prop_fn` compiles whole property trees (delay windows,
    implications, negations) into closures ``fn(trace, cycle) ->
    (verdict, resolving_cycle)`` that mirror
    :meth:`PropertyChecker.eval_prop` case for case.  Caches are keyed by
    node identity: property ASTs are owned by the (immutable, shared)
    design, so ids are stable for the design's lifetime.
    """

    __slots__ = ("_lowerer", "_fns", "_props")

    def __init__(self, design: Design):
        self._lowerer = _PropLowerer(design)
        self._fns: dict = {}
        self._props: dict = {}

    def expr_fn(self, expr: ast.Expr):
        """Closure ``fn((trace, cycle)) -> FourState``, or ``None`` when
        this expression must use the interpreted path."""
        fn = self._fns.get(id(expr))
        if fn is None:
            try:
                fn, _ = self._lowerer._lower_expr(expr)
            except UnsupportedDesign:
                fn = False
            self._fns[id(expr)] = fn
        return fn or None

    def prop_fn(self, prop: ast.PropExpr):
        """Closure ``fn(trace, cycle) -> (verdict, at)``, or ``None``."""
        fn = self._props.get(id(prop))
        if fn is None:
            try:
                fn = self._lower_prop(prop)
            except UnsupportedDesign:
                fn = False
            self._props[id(prop)] = fn
        return fn or None

    def _lower_prop(self, prop: ast.PropExpr):
        if isinstance(prop, ast.PropBool):
            value, _ = self._lowerer._lower_expr(prop.expr)

            def prop_bool(trace, cycle):
                if cycle >= len(trace.snapshots):
                    return UNDET, cycle
                result = value((trace, cycle))
                if result.value != 0:
                    return TRUE, cycle
                if result.xmask == 0:
                    return FALSE, cycle
                return UNDET, cycle
            return prop_bool
        if isinstance(prop, ast.PropNot):
            operand = self._lower_prop(prop.operand)

            def prop_not(trace, cycle):
                if cycle >= len(trace.snapshots):
                    return UNDET, cycle
                verdict, at = operand(trace, cycle)
                if verdict == TRUE:
                    return FALSE, at
                if verdict == FALSE:
                    return TRUE, at
                return UNDET, at
            return prop_not
        if isinstance(prop, ast.PropDelay):
            rhs = self._lower_prop(prop.rhs)
            lhs = (self._lower_prop(prop.lhs)
                   if prop.lhs is not None else None)
            lo, hi = prop.lo, prop.hi

            def prop_delay(trace, cycle):
                length = len(trace.snapshots)
                if cycle >= length:
                    return UNDET, cycle
                if lhs is not None:
                    verdict, at = lhs(trace, cycle)
                    if verdict != TRUE:
                        return verdict, at
                    base = at
                else:
                    base = cycle - 1  # leading ##N counts from `cycle`
                saw_undet = False
                for offset in range(lo, hi + 1):
                    target = (base + offset if lhs is not None
                              else cycle + offset)
                    if target >= length:
                        saw_undet = True
                        continue
                    verdict, at = rhs(trace, target)
                    if verdict == TRUE:
                        return TRUE, at
                    if verdict == UNDET:
                        saw_undet = True
                if saw_undet:
                    return UNDET, length - 1
                last = base + hi if lhs is not None else cycle + hi
                return FALSE, min(last, length - 1)
            return prop_delay
        if isinstance(prop, ast.PropImplication):
            antecedent = self._lower_prop(prop.antecedent)
            consequent = self._lower_prop(prop.consequent)
            overlapped = prop.overlapped

            def prop_implication(trace, cycle):
                if cycle >= len(trace.snapshots):
                    return UNDET, cycle
                verdict, match_end = antecedent(trace, cycle)
                if verdict == FALSE:
                    return TRUE, cycle  # vacuous pass
                if verdict == UNDET:
                    return UNDET, match_end
                start = match_end if overlapped else match_end + 1
                return consequent(trace, start)
            return prop_implication
        message = f"cannot evaluate property node {type(prop).__name__}"

        def prop_bad(trace, cycle):
            # eval_prop bounds-checks before dispatching, so a node past
            # the end of the trace is UNDET even when unknown.
            if cycle >= len(trace.snapshots):
                return UNDET, cycle
            raise TypeError(message)
        return prop_bad


_PROP_LOCK = threading.Lock()
_PROP_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _prop_program(design: Design) -> _PropProgram:
    with _PROP_LOCK:
        program = _PROP_PROGRAMS.get(design)
        if program is None:
            program = _PropProgram(design)
            _PROP_PROGRAMS[design] = program
        return program


# 3-valued property verdicts.
TRUE = "true"
FALSE = "false"
UNDET = "undetermined"   # obligation ran past the end of the trace / X


def _bool_verdict(value: FourState) -> str:
    if value.is_true():
        return TRUE
    if value.is_false():
        return FALSE
    return UNDET


def _record_quality(counters, checker: "PropertyChecker",
                    body: ast.PropExpr, cycle: int, verdict: str) -> None:
    """Fold one evaluated start cycle into an assertion-quality record.

    For implications the antecedent is re-evaluated at the start cycle to
    split a TRUE verdict into *vacuous* (antecedent never matched) vs
    *real* pass — today's checkers collapse both into TRUE.  The extra
    evaluation dispatches through :meth:`PropertyChecker.eval_prop`, so
    compiled and interpreted tiers count identically; it only runs when a
    quality sink is attached.  ``verdict == TRUE`` implies the antecedent
    was TRUE or FALSE (an UNDET antecedent makes the implication UNDET),
    and ``verdict == FALSE`` implies it was TRUE — so ``fails`` always
    pairs with an activation.
    """
    if verdict == UNDET:
        return
    if isinstance(body, ast.PropImplication):
        antecedent, _ = checker.eval_prop(body.antecedent, cycle)
        if antecedent == TRUE:
            counters["activations"] += 1
        if verdict == TRUE:
            if antecedent == FALSE:
                counters["vacuous"] += 1
            else:
                counters["real_passes"] += 1
        else:
            counters["fails"] += 1
        return
    counters["activations"] += 1
    if verdict == TRUE:
        counters["real_passes"] += 1
    else:
        counters["fails"] += 1


class PropertyChecker:
    """Evaluates one property over a trace.

    ``compiled=True`` (the default) evaluates boolean layers through
    per-design closures compiled by :class:`_PropLowerer` — same verdicts,
    same ``EvalError`` messages, no per-node dispatch; expressions the
    lowerer rejects fall back to the interpreted path individually.
    ``compiled=False`` forces the interpreted path throughout (the
    ``sim_mode="interp"`` baseline).
    """

    def __init__(self, design: Design, trace: Trace, compiled: bool = True):
        self.design = design
        self.trace = trace
        self._envs: dict = {}
        self._program = _prop_program(design) if compiled else None

    def _env(self, cycle: int) -> _TraceEnv:
        env = self._envs.get(cycle)
        if env is None:
            env = _TraceEnv(self.trace, cycle, self.design.params, self._envs)
        return env

    def _eval_bool(self, expr: ast.Expr, cycle: int) -> FourState:
        """Truth value of ``expr`` at ``cycle`` (1-bit, 3-valued)."""
        program = self._program
        if program is not None:
            fn = program.expr_fn(expr)
            if fn is not None:
                # Raw value, not collapsed to 1 bit: every consumer only
                # asks is_true()/is_false(), on which the collapse is a
                # no-op.
                return fn((self.trace, cycle))
        return self._env(cycle).evaluator().eval_bool(expr)

    def eval_prop(self, prop: ast.PropExpr, cycle: int) -> "tuple[str, int]":
        """Returns (verdict, resolving_cycle)."""
        program = self._program
        if program is not None:
            fn = program.prop_fn(prop)
            if fn is not None:
                return fn(self.trace, cycle)
        if cycle >= len(self.trace):
            return UNDET, cycle
        if isinstance(prop, ast.PropBool):
            return _bool_verdict(self._eval_bool(prop.expr, cycle)), cycle
        if isinstance(prop, ast.PropNot):
            verdict, at = self.eval_prop(prop.operand, cycle)
            if verdict == TRUE:
                return FALSE, at
            if verdict == FALSE:
                return TRUE, at
            return UNDET, at
        if isinstance(prop, ast.PropDelay):
            return self._eval_delay(prop, cycle)
        if isinstance(prop, ast.PropImplication):
            return self._eval_implication(prop, cycle)
        raise TypeError(f"cannot evaluate property node {type(prop).__name__}")

    def _eval_delay(self, prop: ast.PropDelay, cycle: int) -> "tuple[str, int]":
        if prop.lhs is not None:
            verdict, at = self.eval_prop(prop.lhs, cycle)
            if verdict != TRUE:
                return verdict, at
            base = at
        else:
            base = cycle - 1  # leading ##N counts from the current cycle
        # Existential over the delay window: the sequence matches if the rhs
        # holds at any offset in [lo, hi].
        saw_undet = False
        for offset in range(prop.lo, prop.hi + 1):
            target = base + offset if prop.lhs is not None else cycle + offset
            if target >= len(self.trace):
                saw_undet = True
                continue
            verdict, at = self.eval_prop(prop.rhs, target)
            if verdict == TRUE:
                return TRUE, at
            if verdict == UNDET:
                saw_undet = True
        if saw_undet:
            return UNDET, len(self.trace) - 1
        last = base + prop.hi if prop.lhs is not None else cycle + prop.hi
        return FALSE, min(last, len(self.trace) - 1)

    def _eval_implication(self, prop: ast.PropImplication,
                          cycle: int) -> "tuple[str, int]":
        verdict, match_end = self.eval_prop(prop.antecedent, cycle)
        if verdict == FALSE:
            return TRUE, cycle  # vacuous pass
        if verdict == UNDET:
            return UNDET, match_end
        start = match_end if prop.overlapped else match_end + 1
        return self.eval_prop(prop.consequent, start)

    def check(self, assertion: ResolvedAssertion,
              skip_cycles: int = 0,
              quality: Optional[dict] = None) -> List[AssertionFailure]:
        """All failures of ``assertion`` over the trace.

        ``skip_cycles`` excludes the reset preamble from evaluation-start
        positions (matching tools that begin checking after reset release).
        ``quality`` (label -> counter dict) receives per-assertion
        activation/vacuity counters when provided.
        """
        failures: List[AssertionFailure] = []
        prop = assertion.prop
        program = self._program
        body_fn = program.prop_fn(prop.body) if program is not None else None
        disable = prop.disable
        disable_fn = (program.expr_fn(disable)
                      if program is not None and disable is not None else None)
        counters = (quality.setdefault(assertion.label, new_quality())
                    if quality is not None else None)
        trace = self.trace
        for cycle in range(skip_cycles, len(trace)):
            if disable is not None:
                active = (disable_fn((trace, cycle))
                          if disable_fn is not None
                          else self._eval_bool(disable, cycle))
                if not active.is_false():
                    continue
            verdict, at = (body_fn(trace, cycle) if body_fn is not None
                           else self.eval_prop(prop.body, cycle))
            if counters is not None:
                _record_quality(counters, self, prop.body, cycle, verdict)
            if verdict == FALSE:
                failures.append(AssertionFailure(
                    self.design.name, assertion.label, prop.name,
                    cycle, at, assertion.message))
        return failures


def property_lookahead(prop: ast.PropExpr) -> int:
    """Static bound on how far past its start cycle a property can sample.

    Evaluating ``prop`` at start cycle ``c`` touches only trace cycles
    ``<= c + property_lookahead(prop)`` (temporal functions like ``$past``
    sample backwards, which never leaves the bound).  Once a trace holds
    more than ``c + lookahead`` cycles, the verdict *and* resolving cycle
    at ``c`` equal the post-hoc full-trace evaluation — no UNDET from
    running off the end of the trace can occur, and no later snapshot is
    consulted.  This is what lets the incremental checker emit final
    verdicts while the simulation is still running.
    """
    if isinstance(prop, ast.PropNot):
        return property_lookahead(prop.operand)
    if isinstance(prop, ast.PropDelay):
        ahead = prop.hi + property_lookahead(prop.rhs)
        if prop.lhs is not None:
            ahead += property_lookahead(prop.lhs)
        return ahead
    if isinstance(prop, ast.PropImplication):
        ahead = (property_lookahead(prop.antecedent)
                 + property_lookahead(prop.consequent))
        if not prop.overlapped:
            ahead += 1
        return ahead
    # PropBool — and unknown nodes, for which eval_prop raises regardless
    # of trace length, so any bound is correct.
    return 0


class IncrementalChecker:
    """Per-cycle assertion evaluation over a still-growing trace.

    Feeds the BMC batch driver: after each simulated cycle,
    :meth:`advance` evaluates every start cycle whose lookahead window is
    now complete (see :func:`property_lookahead`), so verdicts are
    available — and simulation can stop — as early as possible.
    :meth:`finalize` evaluates the remaining tail start cycles once the
    trace is complete, exactly as a post-hoc check would.

    A label *resolves* at its first definitive event in start-cycle
    order: an assertion failure (into ``failed``) or an ``EvalError``
    from the property (into ``errors``).  Verdicts match
    :meth:`PropertyChecker.check` cycle for cycle.
    """

    def __init__(self, design: Design, trace: Trace,
                 assertions: List[ResolvedAssertion], skip_cycles: int,
                 compiled: bool = True, quality: Optional[dict] = None):
        self.checker = PropertyChecker(design, trace, compiled=compiled)
        self.trace = trace
        self.failed: set = set()
        self.errors: dict = {}
        self.quality = quality
        # [assertion, lookahead, next start cycle, body_fn, disable_fn,
        #  counters, antecedent, ant_fn, fast] — the per-assertion
        # closures and quality plumbing are resolved once here, not on
        # every scan.  ``fast`` is ``(ant_expr_fn, cons_fn, overlapped)``
        # for implication bodies whose antecedent is a plain boolean:
        # there ``match_end == cycle``, so the scan can evaluate the
        # antecedent expression once and then only the consequent —
        # instead of the whole implication plus a second antecedent pass
        # for vacuity classification.
        program = self.checker._program
        self._pending = []
        for assertion in assertions:
            body = assertion.prop.body
            disable = assertion.prop.disable
            body_fn = program.prop_fn(body) if program is not None else None
            disable_fn = (program.expr_fn(disable)
                          if program is not None and disable is not None
                          else None)
            counters = (quality.setdefault(assertion.label, new_quality())
                        if quality is not None else None)
            antecedent = ant_fn = fast = None
            if counters is not None and isinstance(body,
                                                   ast.PropImplication):
                antecedent = body.antecedent
                if program is not None:
                    ant_fn = program.prop_fn(antecedent)
                    if body_fn is not None and isinstance(antecedent,
                                                          ast.PropBool):
                        ant_expr_fn = program.expr_fn(antecedent.expr)
                        cons_fn = program.prop_fn(body.consequent)
                        if ant_expr_fn is not None and cons_fn is not None:
                            fast = (ant_expr_fn, cons_fn, body.overlapped)
            self._pending.append(
                [assertion, property_lookahead(body), skip_cycles,
                 body_fn, disable_fn, counters, antecedent, ant_fn,
                 fast])

    def all_resolved(self) -> bool:
        return not self._pending

    def advance(self) -> None:
        """Evaluate every start cycle with a complete lookahead window."""
        if not self._pending:
            return
        length = len(self.trace)
        self._pending = [
            entry for entry in self._pending
            if not self._scan(entry, length - 1 - entry[1])]

    def finalize(self) -> None:
        """Trace complete: evaluate the remaining start cycles post-hoc."""
        if not self._pending:
            return
        length = len(self.trace)
        self._pending = [entry for entry in self._pending
                         if not self._scan(entry, length - 1)]

    def _scan(self, entry, limit: int) -> bool:
        """Evaluate start cycles up to ``limit``; True when resolved."""
        (assertion, _, cycle, body_fn, disable_fn,
         counters, antecedent, ant_fn, fast) = entry
        prop = assertion.prop
        checker = self.checker
        disable = prop.disable
        trace = self.trace
        if fast is not None:
            ant_expr_fn, cons_fn, overlapped = fast
        try:
            while cycle <= limit:
                if disable is not None:
                    active = (disable_fn((trace, cycle))
                              if disable_fn is not None
                              else checker._eval_bool(disable, cycle))
                    if not active.is_false():
                        cycle += 1
                        continue
                if fast is not None:
                    # Mirrors prop_implication with a prop_bool
                    # antecedent at match_end == cycle; the bounds check
                    # is moot because cycle <= limit < len(trace).
                    value = ant_expr_fn((trace, cycle))
                    if value.value != 0:
                        verdict, _ = cons_fn(
                            trace, cycle if overlapped else cycle + 1)
                        if verdict == TRUE:
                            counters["activations"] += 1
                            counters["real_passes"] += 1
                        elif verdict == FALSE:
                            counters["activations"] += 1
                            counters["fails"] += 1
                    elif value.xmask == 0:
                        verdict = TRUE
                        counters["vacuous"] += 1
                    else:
                        verdict = UNDET
                    cycle += 1
                    if verdict == FALSE:
                        self.failed.add(assertion.label)
                        return True
                    continue
                verdict, _ = (body_fn(trace, cycle) if body_fn is not None
                              else checker.eval_prop(prop.body, cycle))
                if counters is not None and verdict != UNDET:
                    if antecedent is None:
                        counters["activations"] += 1
                        counters["real_passes" if verdict == TRUE
                                 else "fails"] += 1
                    else:
                        ant, _ = (ant_fn(trace, cycle)
                                  if ant_fn is not None
                                  else checker.eval_prop(antecedent,
                                                         cycle))
                        if ant == TRUE:
                            counters["activations"] += 1
                        if verdict == TRUE:
                            if ant == FALSE:
                                counters["vacuous"] += 1
                            else:
                                counters["real_passes"] += 1
                        else:
                            counters["fails"] += 1
                cycle += 1
                if verdict == FALSE:
                    self.failed.add(assertion.label)
                    return True
        except EvalError as exc:
            self.errors[assertion.label] = str(exc)
            return True
        entry[2] = cycle
        return False


def check_trace(design: Design, trace: Trace,
                skip_cycles: Optional[int] = None,
                compiled: bool = True,
                quality: Optional[dict] = None) -> List[AssertionFailure]:
    """Check every assertion in ``design`` against ``trace``."""
    if skip_cycles is None:
        skip_cycles = 0
    checker = PropertyChecker(design, trace, compiled=compiled)
    failures: List[AssertionFailure] = []
    for assertion in design.assertions:
        failures.extend(checker.check(assertion, skip_cycles,
                                      quality=quality))
    return failures


def check_assertions(design: Design, trace: Trace,
                     reset_cycles: int = 2,
                     compiled: bool = True,
                     quality: Optional[dict] = None
                     ) -> List[AssertionFailure]:
    """Like :func:`check_trace` but skipping the reset preamble.

    Checking starts one cycle *after* reset release: properties that sample
    ``$past`` would otherwise compare post-reset state against reset-era
    values that never followed the design's update rule.  This matches the
    common verification practice of arming checkers a cycle after reset.
    """
    return check_trace(design, trace, skip_cycles=reset_cycles + 1,
                       compiled=compiled, quality=quality)
