"""Runtime assertion checking over simulation traces.

Semantics (finite-trace, weak): an obligation that runs past the end of the
trace is *undetermined* and does not fail — mirroring how a simulator only
reports failures it actually observed, while the BMC driver picks trace
depths long enough for obligations to resolve.

Evaluation is 3-valued: a consequent that samples X neither passes nor
fails by value; we treat "not definitely true" as a failure only when all
sampled bits are known.  Reset periods are excluded the standard way via
``disable iff``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.eval import EvalError, Evaluator
from repro.sim.trace import Trace
from repro.sim.values import FourState
from repro.verilog import ast
from repro.verilog.elaborator import Design, ResolvedAssertion


class AssertionFailure:
    """One observed assertion failure."""

    __slots__ = ("module", "label", "property_name", "start_cycle", "fail_cycle",
                 "message")

    def __init__(self, module: str, label: str, property_name: str,
                 start_cycle: int, fail_cycle: int, message: str):
        self.module = module
        self.label = label
        self.property_name = property_name
        self.start_cycle = start_cycle
        self.fail_cycle = fail_cycle
        self.message = message

    def log_line(self) -> str:
        """The log format our datasets carry (modelled on simulator output)."""
        text = (f"failed assertion {self.module}.{self.label} "
                f"at cycle {self.fail_cycle}")
        if self.message:
            text += f": {self.message}"
        return text

    def __repr__(self) -> str:  # pragma: no cover
        return f"AssertionFailure({self.log_line()!r})"


class _TraceEnv:
    """Evaluator environment bound to one trace cycle, with temporal
    system-function support."""

    def __init__(self, trace: Trace, cycle: int, params):
        self.trace = trace
        self.cycle = cycle
        self.params = params

    def evaluator(self) -> Evaluator:
        return Evaluator(self._lookup, self.params, sys_hook=self._sys_hook)

    def _lookup(self, name: str) -> FourState:
        try:
            return self.trace[self.cycle][name]
        except KeyError:
            raise EvalError(f"no such signal '{name}' in trace") from None

    def _at(self, cycle: int) -> "_TraceEnv":
        return _TraceEnv(self.trace, cycle, self.params)

    def _sys_hook(self, name: str, args) -> FourState:
        if name == "$past":
            depth = 1
            if len(args) > 1:
                folded = args[1]
                if isinstance(folded, ast.Number):
                    depth = folded.value
            past_cycle = self.cycle - depth
            if past_cycle < 0:
                return FourState.unknown(1)
            return self._at(past_cycle).evaluator().eval(args[0])
        if name in ("$rose", "$fell", "$stable"):
            if self.cycle == 0:
                return FourState.unknown(1)
            now = self.evaluator().eval(args[0])
            before = self._at(self.cycle - 1).evaluator().eval(args[0])
            if name == "$stable":
                return now.case_eq(before)
            now_bit, before_bit = now.bit(0), before.bit(0)
            if now_bit.has_x or before_bit.has_x:
                return FourState.unknown(1)
            if name == "$rose":
                return FourState.from_bool(before_bit.value == 0 and now_bit.value == 1)
            return FourState.from_bool(before_bit.value == 1 and now_bit.value == 0)
        raise EvalError(f"system function {name} unsupported in properties")


# 3-valued property verdicts.
TRUE = "true"
FALSE = "false"
UNDET = "undetermined"   # obligation ran past the end of the trace / X


def _bool_verdict(value: FourState) -> str:
    if value.is_true():
        return TRUE
    if value.is_false():
        return FALSE
    return UNDET


class PropertyChecker:
    """Evaluates one property over a trace."""

    def __init__(self, design: Design, trace: Trace):
        self.design = design
        self.trace = trace

    def _env(self, cycle: int) -> _TraceEnv:
        return _TraceEnv(self.trace, cycle, self.design.params)

    def eval_prop(self, prop: ast.PropExpr, cycle: int) -> "tuple[str, int]":
        """Returns (verdict, resolving_cycle)."""
        if cycle >= len(self.trace):
            return UNDET, cycle
        if isinstance(prop, ast.PropBool):
            value = self._env(cycle).evaluator().eval_bool(prop.expr)
            return _bool_verdict(value), cycle
        if isinstance(prop, ast.PropNot):
            verdict, at = self.eval_prop(prop.operand, cycle)
            if verdict == TRUE:
                return FALSE, at
            if verdict == FALSE:
                return TRUE, at
            return UNDET, at
        if isinstance(prop, ast.PropDelay):
            return self._eval_delay(prop, cycle)
        if isinstance(prop, ast.PropImplication):
            return self._eval_implication(prop, cycle)
        raise TypeError(f"cannot evaluate property node {type(prop).__name__}")

    def _eval_delay(self, prop: ast.PropDelay, cycle: int) -> "tuple[str, int]":
        if prop.lhs is not None:
            verdict, at = self.eval_prop(prop.lhs, cycle)
            if verdict != TRUE:
                return verdict, at
            base = at
        else:
            base = cycle - 1  # leading ##N counts from the current cycle
        # Existential over the delay window: the sequence matches if the rhs
        # holds at any offset in [lo, hi].
        saw_undet = False
        for offset in range(prop.lo, prop.hi + 1):
            target = base + offset if prop.lhs is not None else cycle + offset
            if target >= len(self.trace):
                saw_undet = True
                continue
            verdict, at = self.eval_prop(prop.rhs, target)
            if verdict == TRUE:
                return TRUE, at
            if verdict == UNDET:
                saw_undet = True
        if saw_undet:
            return UNDET, len(self.trace) - 1
        last = base + prop.hi if prop.lhs is not None else cycle + prop.hi
        return FALSE, min(last, len(self.trace) - 1)

    def _eval_implication(self, prop: ast.PropImplication,
                          cycle: int) -> "tuple[str, int]":
        verdict, match_end = self.eval_prop(prop.antecedent, cycle)
        if verdict == FALSE:
            return TRUE, cycle  # vacuous pass
        if verdict == UNDET:
            return UNDET, match_end
        start = match_end if prop.overlapped else match_end + 1
        return self.eval_prop(prop.consequent, start)

    def check(self, assertion: ResolvedAssertion,
              skip_cycles: int = 0) -> List[AssertionFailure]:
        """All failures of ``assertion`` over the trace.

        ``skip_cycles`` excludes the reset preamble from evaluation-start
        positions (matching tools that begin checking after reset release).
        """
        failures: List[AssertionFailure] = []
        prop = assertion.prop
        for cycle in range(skip_cycles, len(self.trace)):
            if prop.disable is not None:
                disabled = self._env(cycle).evaluator().eval_bool(prop.disable)
                if not disabled.is_false():
                    continue
            verdict, at = self.eval_prop(prop.body, cycle)
            if verdict == FALSE:
                failures.append(AssertionFailure(
                    self.design.name, assertion.label, prop.name,
                    cycle, at, assertion.message))
        return failures


def check_trace(design: Design, trace: Trace,
                skip_cycles: Optional[int] = None) -> List[AssertionFailure]:
    """Check every assertion in ``design`` against ``trace``."""
    if skip_cycles is None:
        skip_cycles = 0
    checker = PropertyChecker(design, trace)
    failures: List[AssertionFailure] = []
    for assertion in design.assertions:
        failures.extend(checker.check(assertion, skip_cycles))
    return failures


def check_assertions(design: Design, trace: Trace,
                     reset_cycles: int = 2) -> List[AssertionFailure]:
    """Like :func:`check_trace` but skipping the reset preamble.

    Checking starts one cycle *after* reset release: properties that sample
    ``$past`` would otherwise compare post-reset state against reset-era
    values that never followed the design's update rule.  This matches the
    common verification practice of arming checkers a cycle after reset.
    """
    return check_trace(design, trace, skip_cycles=reset_cycles + 1)
