"""Insertion of SVA property/assertion source into a design.

Stage 2 of the pipeline takes generated SVA text and embeds it into the
Verilog module before validation.  Insertion is textual (before
``endmodule``) followed by re-canonicalization, so the combined artefact
has stable line numbers.
"""

from __future__ import annotations

from typing import List

from repro.verilog.compile import CompileResult, compile_source
from repro.verilog.writer import write_module


class SvaInsertionError(Exception):
    """Raised when the combined design + SVA source fails to compile."""


def insert_sva_text(source: str, sva_blocks: List[str]) -> str:
    """Insert raw SVA source blocks before ``endmodule`` and canonicalize.

    Raises :class:`SvaInsertionError` when the result does not compile —
    which is precisely how the pipeline detects hallucinated SVAs with
    syntax problems.
    """
    marker = "endmodule"
    index = source.rfind(marker)
    if index < 0:
        raise SvaInsertionError("design has no 'endmodule' to insert before")
    blob = "\n".join(sva_blocks)
    combined = source[:index] + blob + "\n" + source[index:]
    result = compile_source(combined)
    if not result.ok:
        raise SvaInsertionError(
            f"SVA insertion produced invalid source:\n{result.failure_summary()}")
    return write_module(result.module)


def compile_with_sva(source: str, sva_blocks: List[str]) -> CompileResult:
    """Insert and compile, returning the full result (never raises for
    source-level failures)."""
    marker = "endmodule"
    index = source.rfind(marker)
    if index < 0:
        result = CompileResult(source)
        from repro.verilog.errors import Diagnostic
        result.diagnostics.append(
            Diagnostic(Diagnostic.ERROR, "design has no 'endmodule'", 0))
        return result
    blob = "\n".join(sva_blocks)
    combined = source[:index] + blob + "\n" + source[index:]
    return compile_source(combined)
