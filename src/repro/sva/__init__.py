"""SystemVerilog Assertion checking (substitute for SymbiYosys).

Two checking modes over the same property subset:

- :mod:`repro.sva.monitor` — runtime checking of a property over a finished
  simulation trace (the "simulation" role: produces the failure logs a
  verification engineer would read).
- :mod:`repro.sva.bmc` — bounded model checking: searches the stimulus
  space (exhaustive when small, directed + random otherwise) for a
  counterexample trace (the "formal" role the paper fills with SymbiYosys).

:mod:`repro.sva.mine` additionally mines candidate invariants from a
design's continuous assignments, so the serving layer can propose
assertions for raw sources that carry no template hints.

The property subset is the temporal layer parsed by
:mod:`repro.verilog.parser`: boolean expressions (including ``$past``,
``$rose``, ``$fell``, ``$stable``), ``##N`` / ``##[m:n]`` delays,
``|->`` / ``|=>`` implication, ``not``, with ``@(posedge clk)`` clocking and
``disable iff``.
"""

from repro.sva.bmc import BmcConfig, BmcResult, bounded_check
from repro.sva.mine import mine_invariant_hints
from repro.sva.monitor import AssertionFailure, check_assertions, check_trace

__all__ = [
    "AssertionFailure",
    "check_assertions",
    "check_trace",
    "BmcConfig",
    "BmcResult",
    "bounded_check",
    "mine_invariant_hints",
]
