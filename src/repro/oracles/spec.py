"""Design-specification writing (GPT-4 surrogate).

The paper's Stage 1 has GPT-4 write a Spec for every sample and a failure
analysis for the non-compiling ones.  Our surrogate derives the spec from
template metadata plus the parsed port list, in the two-section format the
paper's Fig. 1 sketches (Ports / Function).
"""

from __future__ import annotations

from typing import Optional

from repro.corpus.meta import TemplateMeta
from repro.verilog.compile import compile_source


def write_spec(source: str, meta: Optional[TemplateMeta] = None,
               module_name: str = "") -> str:
    """Render a specification document for ``source``."""
    result = compile_source(source)
    lines = []
    name = module_name
    if result.module is not None:
        name = result.module.name
    lines.append(f"# Specification: {name}")
    if meta is not None:
        lines.append("")
        lines.append(meta.summary)
    lines.append("")
    lines.append("## Ports")
    if result.module is not None:
        for port in result.module.ports:
            width = f"[{port.msb}:{port.lsb}] " if port.width > 1 else ""
            note = ""
            if meta is not None and port.name in meta.port_notes:
                note = f" — {meta.port_notes[port.name]}"
            elif port.name == "clk":
                note = " — clock"
            elif port.name in ("rst_n", "rstn"):
                note = " — asynchronous active-low reset"
            lines.append(f"- {port.direction} {width}{port.name}{note}")
    else:
        lines.append("- (port list unavailable: the design failed to parse)")
    lines.append("")
    lines.append("## Function")
    if meta is not None:
        for bullet in meta.behaviour:
            lines.append(f"- {bullet}")
    else:
        lines.append("- Behaviour as implied by the module body.")
    return "\n".join(lines) + "\n"


# Human-readable expansions of the compiler diagnostic families; the
# Verilog-PT analyses pair the failing code with this prose.
_ANALYSIS_HINTS = [
    ("expected 'module'", "the file does not start with a module declaration"),
    ("missing 'endmodule'", "the module declaration is never closed with "
                            "'endmodule'"),
    ("missing 'end'", "a 'begin' block is never closed, so the parser ran "
                      "off the end of the block"),
    ("is not declared", "an identifier is used without a matching wire/reg "
                        "declaration"),
    ("duplicate declaration", "the same name is declared twice in one scope"),
    ("continuous assignment to reg", "an 'assign' drives a variable declared "
                                     "as reg; continuous assignments may only "
                                     "drive nets"),
    ("procedural assignment to wire", "an always block assigns a net; "
                                      "procedural assignments may only drive "
                                      "variables"),
    ("assignment to input", "the design drives one of its own input ports"),
    ("driven by both assign and always", "a signal has conflicting structural "
                                         "and procedural drivers"),
    ("bad base character", "a numeric literal uses an illegal base specifier"),
    ("expected", "the token stream violates the grammar at this point"),
]


def analyze_compile_failure(source: str) -> str:
    """Failure-analysis prose for a non-compiling sample (GPT-4 surrogate).

    Returns an empty string when the source actually compiles.
    """
    result = compile_source(source)
    if result.ok:
        return ""
    parts = []
    for diag in result.errors():
        explanation = "the construct is not legal Verilog at this position"
        for needle, prose in _ANALYSIS_HINTS:
            if needle in diag.message:
                explanation = prose
                break
        where = f"near line {diag.line}" if diag.line else "at an unknown location"
        parts.append(f"Compilation fails {where}: {diag.message}. "
                     f"Likely cause: {explanation}.")
    return "\n".join(parts)
