"""Annotation oracles — surrogates for the paper's LLM annotators.

The paper uses GPT-4 (specs, failure analyses, CoTs) and Claude-3.5 (bug +
SVA generation) as *noisy annotators whose output is validated by EDA
tools*.  Offline we substitute rule-based generators with controlled
imperfection, so every validation path in the pipeline stays exercised:

- :mod:`repro.oracles.spec` — design-specification writer (perfect: spec
  errors are not load-bearing in the paper's pipeline);
- :mod:`repro.oracles.sva` — SVA synthesizer with a hallucination model
  (invalid or ill-formed assertions at a configurable rate, which Stage 2
  must filter via compile + bounded checking);
- :mod:`repro.oracles.cot` — chain-of-thought writer calibrated to the
  paper's 74.55% validity rate, with Stage 3's golden-solution comparison
  deciding which entries keep their CoT.
"""

from repro.oracles.cot import CotOracle, CotProposal
from repro.oracles.spec import analyze_compile_failure, write_spec
from repro.oracles.sva import SvaOracle, SvaProposal

__all__ = [
    "write_spec",
    "analyze_compile_failure",
    "SvaOracle",
    "SvaProposal",
    "CotOracle",
    "CotProposal",
]
