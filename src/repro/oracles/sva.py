"""SVA synthesis with a hallucination model (Claude-3.5 surrogate).

The paper has Claude-3.5 generate SVAs for each compiled design and then
*validates every one with SymbiYosys* because LLMs hallucinate.  Our
surrogate starts from the template's known-good hints and, at a
configurable rate, distorts a proposal the way a hallucinating LLM would:

- wrong delay (off by one cycle),
- inverted consequent polarity,
- wrong signal in the consequent,
- missing semicolon (ill-formed source).

Distorted proposals usually fail validation on the golden design and are
dropped by Stage 2, exactly like the paper's filter.  A distortion that
*survives* validation is harmless: it is then simply a weaker but true
property.
"""

from __future__ import annotations

import random
import re
from typing import List, Optional

from repro.corpus.meta import DesignSeed, SvaHint


class SvaProposal:
    """One candidate assertion as emitted by the oracle."""

    __slots__ = ("hint", "property_text", "assertion_text", "distortion")

    def __init__(self, hint: SvaHint, property_text: str, assertion_text: str,
                 distortion: Optional[str] = None):
        self.hint = hint
        self.property_text = property_text
        self.assertion_text = assertion_text
        self.distortion = distortion

    @property
    def name(self) -> str:
        return self.hint.name

    def blocks(self) -> List[str]:
        return [self.property_text, self.assertion_text]

    def __repr__(self) -> str:  # pragma: no cover
        tag = f" distorted:{self.distortion}" if self.distortion else ""
        return f"SvaProposal({self.name}{tag})"


class SvaOracle:
    """Seeded SVA generator with hallucination injection."""

    def __init__(self, rng: Optional[random.Random] = None,
                 hallucination_rate: float = 0.15):
        self.rng = rng or random.Random(0)
        self.hallucination_rate = hallucination_rate

    def propose(self, seed: DesignSeed) -> List[SvaProposal]:
        """One proposal per template hint, a fraction of them distorted."""
        proposals = []
        for hint in seed.meta.sva_hints:
            if self.rng.random() < self.hallucination_rate:
                proposals.append(self._distort(hint))
            else:
                proposals.append(SvaProposal(
                    hint, hint.property_source(), hint.assertion_source()))
        return proposals

    # -- distortions -------------------------------------------------------

    def _distort(self, hint: SvaHint) -> SvaProposal:
        choices = ["delay", "polarity", "signal", "syntax"]
        if hint.antecedent is None:
            choices.remove("delay")
        kind = self.rng.choice(choices)
        if kind == "delay":
            wrong = SvaHint(hint.name, hint.consequent, hint.antecedent,
                            delay=hint.delay + self.rng.choice([1, 2]),
                            message=hint.message)
            return SvaProposal(wrong, wrong.property_source(),
                               wrong.assertion_source(), distortion="delay")
        if kind == "polarity":
            wrong = SvaHint(hint.name, f"!({hint.consequent})", hint.antecedent,
                            delay=hint.delay, message=hint.message)
            return SvaProposal(wrong, wrong.property_source(),
                               wrong.assertion_source(), distortion="polarity")
        if kind == "signal":
            distorted = self._swap_one_identifier(hint.consequent)
            wrong = SvaHint(hint.name, distorted, hint.antecedent,
                            delay=hint.delay, message=hint.message)
            return SvaProposal(wrong, wrong.property_source(),
                               wrong.assertion_source(), distortion="signal")
        # syntax: drop the terminating semicolon of the property body.
        prop_text = hint.property_source().replace(";\nendproperty",
                                                   "\nendproperty", 1)
        return SvaProposal(hint, prop_text, hint.assertion_source(),
                           distortion="syntax")

    def _swap_one_identifier(self, expr: str) -> str:
        names = re.findall(r"(?<![\$\w])[A-Za-z_][A-Za-z0-9_]*", expr)
        if not names:
            return expr + " && ghost_signal"
        victim = self.rng.choice(names)
        return re.sub(rf"\b{victim}\b", f"{victim}_ghost", expr, count=1)
