"""Chain-of-thought generation (GPT-4 surrogate), Stage 3.

The paper prompts GPT-4 with (Spec, buggy code, logs, bug location) and
asks for a reasoning chain; a script then validates the CoT against the
golden solution, finding ~74.55% of chains correct.  Our surrogate writes a
signal-tracing argument from the def-use cone of the failing assertion; at
a configurable error rate it derails onto a *plausible distractor line*
(another driver in the same cone) so the Stage-3 validator has real work
to do.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.bugs.injector import BugRecord
from repro.verilog.analysis import DefUse
from repro.verilog.parser import parse_module


class CotProposal:
    """A reasoning chain plus the (line, fix) conclusion it argues for."""

    __slots__ = ("text", "concluded_line", "concluded_fix")

    def __init__(self, text: str, concluded_line: int, concluded_fix: str):
        self.text = text
        self.concluded_line = concluded_line
        self.concluded_fix = concluded_fix

    def is_correct_for(self, record: BugRecord) -> bool:
        """Stage-3 validation: conclusion must match the golden solution."""
        return (self.concluded_line == record.line
                and _normalize(self.concluded_fix) == _normalize(record.fixed_line))


def _normalize(line: str) -> str:
    return " ".join(line.split())


class CotOracle:
    """Seeded CoT writer calibrated to the paper's ~74.55% validity."""

    # The paper reports 74.55% of generated CoTs validated as correct.
    PAPER_VALIDITY_RATE = 0.7455

    def __init__(self, rng: Optional[random.Random] = None,
                 validity_rate: Optional[float] = None):
        self.rng = rng or random.Random(0)
        self.validity_rate = (self.PAPER_VALIDITY_RATE if validity_rate is None
                              else validity_rate)

    def generate(self, record: BugRecord, log_text: str,
                 assertion_signals: List[str]) -> CotProposal:
        """One reasoning chain for a failing case."""
        module = parse_module(record.buggy_source)
        defuse = DefUse(module)
        cone = sorted(defuse.fanin_cone(assertion_signals))
        if self.rng.random() < self.validity_rate:
            return self._correct_chain(record, log_text, cone)
        return self._derailed_chain(record, log_text, cone, defuse)

    # -- chains -------------------------------------------------------------

    def _preamble(self, log_text: str, cone: List[str]) -> List[str]:
        steps = []
        first_log = log_text.splitlines()[0] if log_text else "an assertion failed"
        steps.append(f"Step 1: The log reports '{first_log}'.")
        steps.append(
            "Step 2: The signals feeding the failing property are: "
            + ", ".join(cone[:8]) + ".")
        return steps

    def _correct_chain(self, record: BugRecord, log_text: str,
                       cone: List[str]) -> CotProposal:
        steps = self._preamble(log_text, cone)
        steps.append(
            f"Step 3: Tracing those drivers, line {record.line} "
            f"('{record.buggy_line}') updates a signal in the property cone "
            f"and its expression does not match the specified behaviour.")
        steps.append(
            f"Step 4: The {record.kind.value}-type error is "
            f"'{record.description}'; restoring the intended expression "
            f"gives '{record.fixed_line}'.")
        steps.append(
            f"Conclusion: replace line {record.line} with "
            f"'{record.fixed_line}'.")
        return CotProposal("\n".join(steps), record.line, record.fixed_line)

    def _derailed_chain(self, record: BugRecord, log_text: str,
                        cone: List[str], defuse: DefUse) -> CotProposal:
        # Pick a plausible distractor: another definition line in the cone.
        distractor_lines = sorted(
            line for line in defuse.cone_lines(cone) if line != record.line)
        buggy_lines = record.buggy_source.splitlines()
        if distractor_lines:
            wrong_line = self.rng.choice(distractor_lines)
        else:
            wrong_line = max(1, record.line - 1)
        wrong_line = min(wrong_line, len(buggy_lines))
        wrong_text = buggy_lines[wrong_line - 1].strip()
        steps = self._preamble(log_text, cone)
        steps.append(
            f"Step 3: Line {wrong_line} ('{wrong_text}') drives a signal in "
            f"the cone and looks inconsistent with the specification.")
        steps.append(
            f"Step 4: Adjusting that expression should realign the design "
            f"with the property.")
        steps.append(
            f"Conclusion: replace line {wrong_line} with '{wrong_text}'.")
        # The derailed chain concludes with the unmodified text, so the
        # Stage-3 comparison against the golden solution rejects it.
        return CotProposal("\n".join(steps), wrong_line, wrong_text)
