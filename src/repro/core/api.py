"""Public API: :class:`AssertSolverPipeline` reproduces the whole paper.

    from repro import AssertSolverPipeline, PipelineConfig

    pipeline = AssertSolverPipeline(PipelineConfig(n_designs=80))
    pipeline.run_datagen()       # Section II  (Verilog-PT / -Bug / SVA-Bug)
    pipeline.train()             # Section III (PT -> SFT -> DPO)
    pipeline.build_benchmark()   # Section IV  (SVA-Eval machine + human)
    results = pipeline.evaluate()           # Section V (all models)
    print(pipeline.report())                # all tables and figures

Each step is lazily triggered by the ones after it, so ``pipeline.report()``
alone runs everything.  A module-level cache keyed by the configuration lets
the benchmark suite share one trained pipeline across benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.engine import BaselineModel
from repro.baselines.profiles import BASELINE_PROFILES
from repro.corpus.generator import resolve_families
from repro.datagen.pipeline import DatagenConfig, DatasetBundle, run_pipeline
from repro.engine import ExecutionEngine
from repro.eval.benchmark import SvaEvalBenchmark, build_benchmark
from repro.eval.histogram import render_histogram
from repro.eval.reporting import (
    render_fig4,
    render_fig5,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.eval.config import EvalConfig
from repro.eval.report import EvalReport
from repro.eval.runner import EvalResult, run_eval
from repro.model.assertsolver import AssertSolver
from repro.sim.compiled import SIM_MODES
from repro.store import StoreConfig


@dataclass
class FleetConfig:
    """Launcher knobs for a same-host fleet: N identical backends plus
    one :class:`repro.serve.FleetRouter` in front (see
    :func:`make_fleet`).  Per-backend service knobs come from the
    accompanying ``ServeConfig``; these are only the fleet shape."""

    n_backends: int = 3
    host: str = "127.0.0.1"
    port: int = 0  # router port; backends always bind ephemeral ports
    health_interval_s: float = 1.0
    ring_replicas: int = 64

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.n_backends, int) \
                or isinstance(self.n_backends, bool) or self.n_backends < 1:
            raise ValueError(f"n_backends must be an integer >= 1, "
                             f"got {self.n_backends!r}")
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be an integer in [0, 65535], "
                             f"got {self.port!r}")
        if not isinstance(self.health_interval_s, (int, float)) \
                or isinstance(self.health_interval_s, bool) \
                or self.health_interval_s <= 0:
            raise ValueError(f"health_interval_s must be a number > 0, "
                             f"got {self.health_interval_s!r}")
        if not isinstance(self.ring_replicas, int) \
                or isinstance(self.ring_replicas, bool) \
                or self.ring_replicas < 1:
            raise ValueError(f"ring_replicas must be an integer >= 1, "
                             f"got {self.ring_replicas!r}")


def make_fleet(fleet: Optional[FleetConfig] = None,
               serve: Optional["ServeConfig"] = None) -> "FleetRouter":
    """An (unstarted) router-managed fleet: ``n_backends`` identical
    :class:`AssertHttpServer` instances (each with its own
    :class:`AssertService` built from ``serve``) behind one
    :class:`FleetRouter`.  ``router.start()`` — or ``with`` — brings the
    whole fleet up; ``router.close()`` drains it in order.  Backends get
    stable ring names ``backend-0..N-1``, so the key->backend map — and
    with it cache affinity — is the same on every launch regardless of
    which ephemeral ports the instances bind.  Point the backends at one
    shared :class:`StoreConfig` path to make the fleet cache-coherent
    across restarts."""
    from repro.serve import (
        AssertHttpServer,
        AssertService,
        FleetRouter,
        HttpConfig,
        RouterConfig,
        ServeConfig,
    )

    fleet = fleet or FleetConfig()
    fleet.validate()
    serve = serve if serve is not None else ServeConfig()
    backends = [
        AssertHttpServer(AssertService(serve),
                         HttpConfig(host=fleet.host, port=0))
        for _ in range(fleet.n_backends)
    ]
    return FleetRouter(
        backends,
        RouterConfig(host=fleet.host, port=fleet.port,
                     health_interval_s=fleet.health_interval_s,
                     ring_replicas=fleet.ring_replicas),
        manage_backends=True,
        node_names=[f"backend-{i}" for i in range(fleet.n_backends)])


@dataclass
class PipelineConfig:
    """Scale and execution knobs for a full reproduction run.

    ``n_workers``/``backend`` parallelize both the datagen stage graph
    and model evaluation; they never change results (all randomness is
    derived per work unit).

    ``template_families``/``family_weights`` select and weight the corpus
    scenario families (FSMs, FIFOs, arbiters, datapaths, ...) the whole
    reproduction trains and evaluates on; see
    :func:`repro.corpus.resolve_families` for validation rules.
    """

    n_designs: int = 80
    bugs_per_design: int = 4
    seed: int = 2025
    n_samples: int = 20
    include_human: bool = True
    include_baselines: bool = True
    n_workers: int = 1
    backend: str = "auto"
    compile_cache: bool = True
    #: Simulation execution tier ("compiled" closure programs or the
    #: "interp" AST walker — see :mod:`repro.sim.compiled`).  Pure
    #: execution knob: both tiers produce byte-identical results, so it
    #: stays out of :meth:`cache_key`.
    sim_mode: str = "compiled"
    template_families: Optional[Tuple[str, ...]] = None
    family_weights: Optional[Dict[str, float]] = None
    #: Persistent artifact store (see :class:`repro.store.StoreConfig`):
    #: an execution knob like ``n_workers`` — it makes re-runs
    #: incremental (datagen) and lets service fleets pool responses
    #: (serve), but never changes results.
    store: Optional[StoreConfig] = None

    def __post_init__(self):
        # Fail fast on unknown/empty family selections instead of minutes
        # later when run_datagen() first builds a DatagenConfig.
        resolve_families(self.template_families, self.family_weights)
        if self.sim_mode not in SIM_MODES:
            raise ValueError(
                f"sim_mode must be one of {SIM_MODES}, got {self.sim_mode!r}")
        if self.store is not None:
            self.store.validate()

    def datagen(self) -> DatagenConfig:
        return DatagenConfig(n_designs=self.n_designs,
                             bugs_per_design=self.bugs_per_design,
                             seed=self.seed,
                             n_workers=self.n_workers,
                             backend=self.backend,
                             compile_cache=self.compile_cache,
                             template_families=self.template_families,
                             family_weights=self.family_weights,
                             store=self.store,
                             sim_mode=self.sim_mode)

    def make_engine(self) -> ExecutionEngine:
        return ExecutionEngine(n_workers=self.n_workers,
                               backend=self.backend)

    def eval_config(self, **overrides) -> EvalConfig:
        """The :class:`repro.eval.EvalConfig` this pipeline evaluates
        under; keyword overrides win.  The eval seed is offset from the
        pipeline seed so sampling during evaluation never replays the
        datagen/training streams."""
        settings = dict(n_samples=self.n_samples, seed=self.seed + 1)
        settings.update(overrides)
        return EvalConfig(**settings)

    def serve(self, **overrides) -> "ServeConfig":
        """A :class:`repro.serve.ServeConfig` inheriting this config's
        execution knobs (workers, backend, caching, seed); keyword
        overrides win.  ``pipeline.config.serve(max_batch=32)`` is the
        one-liner from a batch reproduction setup to an online service."""
        from repro.serve import ServeConfig

        settings = dict(n_workers=self.n_workers, backend=self.backend,
                        compile_cache=self.compile_cache, seed=self.seed,
                        store=self.store, sim_mode=self.sim_mode)
        settings.update(overrides)
        return ServeConfig(**settings)

    def make_service(self, **overrides) -> "AssertService":
        """An (unstarted) :class:`repro.serve.AssertService` over
        :meth:`serve`'s config — start it with ``with`` or `.start()`."""
        from repro.serve import AssertService

        return AssertService(self.serve(**overrides))

    def serve_http(self, host: str = "127.0.0.1", port: int = 0,
                   **overrides) -> "AssertHttpServer":
        """An (unstarted) :class:`repro.serve.AssertHttpServer` fronting
        :meth:`make_service`'s service — the one-liner from a batch
        reproduction setup to a network service.  ``port=0`` binds an
        ephemeral port (read it off ``server.port`` after ``start()``);
        keyword overrides reach the underlying :class:`ServeConfig`."""
        from repro.serve import AssertHttpServer, HttpConfig

        return AssertHttpServer(self.make_service(**overrides),
                                HttpConfig(host=host, port=port))

    def serve_fleet(self, n_backends: int = 3, host: str = "127.0.0.1",
                    port: int = 0, **overrides) -> "FleetRouter":
        """An (unstarted) :class:`repro.serve.FleetRouter` over
        ``n_backends`` identical backends built from :meth:`serve`'s
        config — the one-liner from a batch reproduction setup to a
        horizontally scaled service.  Keyword overrides reach the
        per-backend :class:`ServeConfig`; the router binds ``port``
        (0 = ephemeral, read it off ``router.port`` after start)."""
        return make_fleet(
            FleetConfig(n_backends=n_backends, host=host, port=port),
            self.serve(**overrides))

    def cache_key(self) -> tuple:
        # Semantic fields only: the execution knobs (n_workers, backend,
        # compile_cache) never change results, so they must not fork the
        # shared-pipeline cache into redundant multi-minute train runs.
        # The family selection IS semantic — it changes the corpus.
        families = (tuple(self.template_families)
                    if self.template_families else None)
        weights = (tuple(sorted(self.family_weights.items()))
                   if self.family_weights else None)
        return (self.n_designs, self.bugs_per_design, self.seed,
                self.n_samples, self.include_human, self.include_baselines,
                families, weights)


class AssertSolverPipeline:
    """End-to-end reproduction driver."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self.bundle: Optional[DatasetBundle] = None
        self.base_model: Optional[AssertSolver] = None
        self.sft_model: Optional[AssertSolver] = None
        self.assertsolver: Optional[AssertSolver] = None
        self.benchmark: Optional[SvaEvalBenchmark] = None
        self.results: Dict[str, EvalResult] = {}
        self.reports: Dict[str, EvalReport] = {}

    # -- stages --------------------------------------------------------------

    def run_datagen(self) -> DatasetBundle:
        if self.bundle is None:
            self.bundle = run_pipeline(self.config.datagen())
        return self.bundle

    def train(self) -> AssertSolver:
        """Train the three checkpoints of Table III."""
        if self.assertsolver is not None:
            return self.assertsolver
        bundle = self.run_datagen()
        self.base_model = AssertSolver(seed=self.config.seed,
                                       name="Base Model")
        model = AssertSolver(seed=self.config.seed, name="SFT Model")
        model.pretrain(bundle.verilog_pt)
        model.train_sft(bundle.sva_bug_train, bundle.verilog_bug)
        self.sft_model = model
        solver = model.clone_checkpoint("AssertSolver")
        solver._train_examples = model._train_examples
        solver.train_dpo()
        self.assertsolver = solver
        return solver

    def build_benchmark(self) -> SvaEvalBenchmark:
        if self.benchmark is None:
            bundle = self.run_datagen()
            self.benchmark = build_benchmark(
                bundle, include_human=self.config.include_human)
        return self.benchmark

    def models(self) -> List[object]:
        """All models of Table III + Table IV, in reporting order."""
        self.train()
        models: List[object] = []
        if self.config.include_baselines:
            for name in ("Claude-3.5", "GPT-4", "o1-preview",
                         "Deepseek-coder-6.7b", "CodeLlama-7b",
                         "Llama-3.1-8b"):
                models.append(BaselineModel(BASELINE_PROFILES[name],
                                            seed=self.config.seed))
        models.extend([self.base_model, self.sft_model, self.assertsolver])
        return models

    def evaluate(self) -> Dict[str, EvalResult]:
        if self.results:
            return self.results
        benchmark = self.build_benchmark()
        eval_config = self.config.eval_config()
        store = (self.config.store.make_store()
                 if self.config.store is not None else None)
        with self.config.make_engine() as engine:
            for model in self.models():
                report = run_eval(model, benchmark.cases, config=eval_config,
                                  engine=engine, store=store)
                self.reports[report.result.model_name] = report
                self.results[report.result.model_name] = report.result
        return self.results

    # -- reporting -------------------------------------------------------------

    def table3_results(self) -> Dict[str, EvalResult]:
        results = self.evaluate()
        return {"Base Model": results["Base Model"],
                "SFT Model": results["SFT Model"],
                "AssertSolver": results["AssertSolver"]}

    def table4_results(self) -> Dict[str, EvalResult]:
        results = self.evaluate()
        order = ["Claude-3.5", "GPT-4", "o1-preview", "Deepseek-coder-6.7b",
                 "CodeLlama-7b", "Llama-3.1-8b", "AssertSolver"]
        return {name: results[name] for name in order if name in results}

    def report(self) -> str:
        """Every table and figure, ready to print."""
        bundle = self.run_datagen()
        results = self.evaluate()
        parts = [
            bundle.summary(),
            self.build_benchmark().summary(),
            "",
            render_table1(),
            "",
            render_table2(bundle.stats["sva_bug_distribution"],
                          bundle.stats["sva_eval_distribution"]),
            "",
            render_table3(self.table3_results()),
            "",
            render_table4(self.table4_results()),
            "",
            "Fig 3: histogram of correct answers across 20 responses",
            render_histogram({"SFT Model": results["SFT Model"],
                              "AssertSolver": results["AssertSolver"]}),
            "",
            render_fig4(self.table4_results()),
            "",
            render_fig5(results["SFT Model"], results["AssertSolver"]),
        ]
        return "\n".join(parts)


# -- shared pipeline cache (used by the benchmark suite) -----------------------

_PIPELINE_CACHE: Dict[tuple, AssertSolverPipeline] = {}


def shared_pipeline(config: Optional[PipelineConfig] = None
                    ) -> AssertSolverPipeline:
    """Process-wide cached pipeline, so every bench reuses one trained run."""
    config = config or PipelineConfig()
    key = config.cache_key()
    if key not in _PIPELINE_CACHE:
        _PIPELINE_CACHE[key] = AssertSolverPipeline(config)
    return _PIPELINE_CACHE[key]
