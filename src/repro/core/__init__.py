"""Top-level orchestration: the one-call reproduction pipeline."""

from repro.core.api import AssertSolverPipeline, PipelineConfig

__all__ = ["AssertSolverPipeline", "PipelineConfig"]
