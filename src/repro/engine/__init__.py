"""The stage-graph execution engine.

Decomposes pipeline work into per-unit tasks with independently derived
RNG streams, runs them over serial/thread/process backends, and merges
results deterministically (parallel output is byte-identical to serial).

- :mod:`repro.engine.rng` — SHA-256 seed derivation and ``StageContext``;
- :mod:`repro.engine.executor` — ordered ``map`` over worker pools;
- :mod:`repro.engine.graph` — declarative stage DAGs;
- :mod:`repro.engine.metrics` — worker-side counter aggregation.
"""

from repro.engine.executor import BACKENDS, ExecutionEngine, available_cpus
from repro.engine.graph import StageGraph, StageInputs
from repro.engine.rng import StageContext, derive_rng, derive_seed

__all__ = [
    "BACKENDS",
    "ExecutionEngine",
    "StageContext",
    "StageGraph",
    "StageInputs",
    "available_cpus",
    "derive_rng",
    "derive_seed",
]
