"""The execution engine: ordered parallel map with pluggable backends.

``ExecutionEngine.map`` applies a picklable task function to a list of
work units and returns results **in input order**, whatever the backend:

- ``serial``  — plain loop in the calling process (the reference
  semantics; every other backend must be byte-identical to it);
- ``thread``  — ``ThreadPoolExecutor`` (useful for I/O-bound units);
- ``process`` — ``ProcessPoolExecutor`` (CPU-bound units; the pipeline's
  default for real parallelism);
- ``auto``    — ``process`` clamped to the CPUs actually available,
  degrading to ``serial`` on a single-core host instead of paying pool
  overhead for nothing.

Because stage units draw only from RNG streams derived per unit (see
:mod:`repro.engine.rng`), scheduling order cannot leak into results.
Every unit call is wrapped with a metrics snapshot so process-local
counters (compile-cache hits, …) surface in the parent; see
:mod:`repro.engine.metrics`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine import metrics
from repro.obs import trace as obs_trace

BACKENDS = ("auto", "serial", "thread", "process")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _warm_noop() -> None:
    """Top-level (hence picklable) no-op used by :meth:`ExecutionEngine.warm`."""


def _call_with_metrics(task: Tuple[Callable, object, object]):
    """Top-level (hence picklable) unit wrapper: run + counter delta + spans.

    ``task`` carries the dispatching map's span context (a picklable
    ``(trace_id, span_id)`` tuple or ``None``); the unit runs inside an
    ``engine.unit`` span under span-export mode, and the spans it
    finishes travel back with the result — the exact protocol the
    counter deltas already use, extended to traces.
    """
    fn, item, trace_ctx = task
    before = metrics.snapshot()
    with obs_trace.export_spans() as spans:
        with obs_trace.span("engine.unit", parent=trace_ctx):
            result = fn(item)
    return result, metrics.delta(before, metrics.snapshot()), spans


class ExecutionEngine:
    """Maps task functions over unit lists with a persistent worker pool."""

    def __init__(self, n_workers: int = 1, backend: str = "auto",
                 initializer: Optional[Callable] = None,
                 initargs: tuple = (),
                 store=None, memo_context: str = "",
                 memo_namespace: str = "stage/v1"):
        """``initializer(*initargs)`` propagates process-global settings
        (e.g. compile-cache knobs) into process-pool workers.  It runs
        only in subprocesses: under the serial and thread backends work
        executes in the calling process, whose state the caller already
        controls — running it there would leak a global mutation past
        the engine's lifetime.

        ``store`` (any :class:`repro.store.ArtifactStore`) enables
        unit-level memoization in :meth:`map`: calls that also pass a
        ``memo_key`` skip units whose results the store already holds.
        ``memo_context`` is the caller's config digest, available to key
        functions via the engine so stored results are only reused for a
        semantically identical configuration."""
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.requested_backend = backend
        self.requested_workers = n_workers
        if backend == "auto":
            n_workers = min(n_workers, available_cpus())
            backend = "process" if n_workers > 1 else "serial"
        if n_workers <= 1:
            backend = "serial"
        self.backend = backend
        self.n_workers = n_workers
        self.store = store
        self.memo_context = memo_context
        self.memo_namespace = memo_namespace
        self._initializer = initializer
        self._initargs = initargs
        self._pool = None
        self._closed = False
        self._stage_stats: "Dict[str, Dict[str, float]]" = {}
        self._metric_totals: Dict[str, Dict[str, int]] = {}
        self._map_count = 0

    # -- lifecycle -----------------------------------------------------------

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("engine is closed")
        if self.backend == "serial":
            return None
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=self._initializer,
                    initargs=self._initargs)
        return self._pool

    def warm(self) -> None:
        """Start the worker pool now instead of lazily at the first map.

        Batch runs don't care, but the serving layer does: without this
        the first request of a cold service pays the whole process-pool
        spawn (plus initializer) latency.  Executors spawn workers
        lazily on submit, so constructing the pool is not enough — a
        round of no-op tasks forces the spawns (and runs the
        initializer) before any real work arrives.  No-op for serial
        backends.
        """
        pool = self._ensure_pool()
        if pool is not None:
            for future in [pool.submit(_warm_noop)
                           for _ in range(self.n_workers)]:
                future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.backend != "serial"

    def map(self, fn: Callable, items: Sequence, stage: Optional[str] = None,
            memo_key: Optional[Callable] = None) -> List:
        """Apply ``fn`` to every item, preserving input order.

        ``fn`` must be a module-level function and items picklable when
        the backend is ``process``.

        When the engine carries a ``store`` and the caller passes
        ``memo_key`` (item -> content-key string, typically built with
        :func:`repro.store.unit_memo_key` over this engine's
        ``memo_context``), every unit is first looked up in the store's
        ``memo_namespace``; only misses execute, and their results are
        written back — so an identical re-run skips straight to stored
        results.  Memoized unit results must be picklable and non-``None``
        (a stored ``None`` is indistinguishable from a miss).  Store hits
        bypass the unit's metrics snapshot, so worker-side counters (e.g.
        compile-cache stats) only reflect units that actually ran.
        """
        items = list(items)
        self._map_count += 1
        stage = stage or f"map-{self._map_count}"
        started = time.perf_counter()
        # No-op outside a trace (batch datagen): span() yields None when
        # no request trace is ambient, at the cost of one contextvar read.
        with obs_trace.span("engine.map",
                            attrs={"stage": stage, "units": len(items),
                                   "backend": self.backend}) as map_span:
            store = self.store if memo_key is not None else None
            if store is None:
                results = self._execute(fn, items)
                memo_hits = memo_misses = 0
            else:
                keys = [memo_key(item) for item in items]
                results = [store.get(self.memo_namespace, key)
                           for key in keys]
                pending = [i for i, cached in enumerate(results)
                           if cached is None]
                memo_hits = len(items) - len(pending)
                memo_misses = len(pending)
                if pending:
                    computed = self._execute(fn, [items[i] for i in pending])
                    for i, result in zip(pending, computed):
                        store.put(self.memo_namespace, keys[i], result)
                        results[i] = result
                if map_span is not None:
                    map_span.attrs["memo_hits"] = memo_hits
        elapsed = time.perf_counter() - started
        bucket = self._stage_stats.setdefault(
            stage, {"units": 0, "seconds": 0.0,
                    "memo_hits": 0, "memo_misses": 0})
        bucket["units"] += len(items)
        bucket["seconds"] += elapsed
        bucket["memo_hits"] += memo_hits
        bucket["memo_misses"] += memo_misses
        return results

    def _execute(self, fn: Callable, items: List) -> List:
        """The raw ordered map: pool dispatch + metrics/span accumulation."""
        pool = self._ensure_pool()
        trace_ctx = obs_trace.current_tuple()
        tasks = [(fn, item, trace_ctx) for item in items]
        if pool is None:
            rows = [_call_with_metrics(task) for task in tasks]
        else:
            chunksize = max(1, len(tasks) // (self.n_workers * 4))
            rows = list(pool.map(_call_with_metrics, tasks,
                                 chunksize=chunksize))
        results = []
        for result, counter_delta, spans in rows:
            metrics.accumulate(self._metric_totals, counter_delta)
            obs_trace.ingest(spans)
            results.append(result)
        return results

    # -- reporting -----------------------------------------------------------

    def metric_totals(self) -> Dict[str, Dict[str, int]]:
        """Summed worker-side counter deltas across all maps so far."""
        return {name: dict(counters)
                for name, counters in self._metric_totals.items()}

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "requested_backend": self.requested_backend,
            "requested_workers": self.requested_workers,
            "cpu_count": available_cpus(),
            "stages": {name: {"units": int(s["units"]),
                              "seconds": round(s["seconds"], 6),
                              "memo_hits": int(s.get("memo_hits", 0)),
                              "memo_misses": int(s.get("memo_misses", 0))}
                       for name, s in self._stage_stats.items()},
        }
