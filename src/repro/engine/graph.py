"""Declarative stage graphs executed over an :class:`ExecutionEngine`.

A :class:`StageGraph` is a small DAG of named stages, each a function of
its dependencies' outputs that may fan per-unit work out through
``inputs.engine.map``.  ``run`` executes stages in dependency order and
returns every stage's output, so a pipeline becomes a thin declaration:

    graph = StageGraph("datagen")
    graph.add_stage("corpus", make_corpus)
    graph.add_stage("stage1", run_stage1_node, deps=("corpus",))
    ...
    outputs = graph.run(engine)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple


class StageInputs:
    """Dependency outputs plus the engine, handed to a stage function."""

    def __init__(self, engine, outputs: Dict[str, object],
                 deps: Tuple[str, ...]):
        self.engine = engine
        self._outputs = outputs
        self._deps = deps

    def __getitem__(self, name: str):
        if name not in self._deps:
            raise KeyError(
                f"stage output {name!r} is not a declared dependency "
                f"(declared: {sorted(self._deps)})")
        return self._outputs[name]


class _Stage:
    __slots__ = ("name", "deps", "run")

    def __init__(self, name: str, deps: Tuple[str, ...], run: Callable):
        self.name = name
        self.deps = deps
        self.run = run


class StageGraph:
    """A DAG of named stages with declaration-checked dependencies."""

    def __init__(self, name: str = "pipeline"):
        self.name = name
        self._stages: Dict[str, _Stage] = {}
        self._order: List[str] = []

    # -- declaration ---------------------------------------------------------

    def _declare(self, name: str, deps: Sequence[str]) -> Tuple[str, ...]:
        if name in self._stages:
            raise ValueError(f"duplicate stage name {name!r}")
        unknown = [dep for dep in deps if dep not in self._stages]
        if unknown:
            raise ValueError(
                f"stage {name!r} depends on undeclared stage(s) {unknown}; "
                f"declare dependencies first")
        return tuple(deps)

    def add_stage(self, name: str, fn: Callable[[StageInputs], object],
                  deps: Sequence[str] = ()) -> None:
        """A serial stage: ``fn(inputs) -> output``."""
        deps = self._declare(name, deps)
        self._stages[name] = _Stage(name, deps, fn)
        self._order.append(name)

    # -- execution -----------------------------------------------------------

    def stage_names(self) -> List[str]:
        return list(self._order)

    def describe(self) -> str:
        """One line per stage: ``name <- dep, dep``."""
        lines = []
        for name in self._order:
            deps = self._stages[name].deps
            arrow = f" <- {', '.join(deps)}" if deps else ""
            lines.append(f"{name}{arrow}")
        return "\n".join(lines)

    def run(self, engine, only: Optional[Sequence[str]] = None
            ) -> Dict[str, object]:
        """Execute all stages (declaration order is topological by
        construction) and return every stage's output by name."""
        wanted = set(self._order if only is None else only)
        missing = wanted - set(self._order)
        if missing:
            raise ValueError(f"unknown stage(s): {sorted(missing)}")
        # Pull in transitive dependencies of the requested stages.
        needed = set()
        frontier = list(wanted)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            frontier.extend(self._stages[name].deps)
        outputs: Dict[str, object] = {}
        for name in self._order:
            if name not in needed:
                continue
            stage = self._stages[name]
            outputs[name] = stage.run(
                StageInputs(engine, outputs, stage.deps))
        return outputs
