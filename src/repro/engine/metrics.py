"""Counter providers sampled around engine work units.

Subsystems with process-local monotonic counters (e.g. the compile cache)
register a provider here at import time.  The engine snapshots all
providers before and after each unit, ships the per-unit delta back from
the worker with the unit's result, and accumulates the deltas in the
parent process — the only way to surface worker-side counters when units
run in a process pool.

Deltas are exact under the serial and process backends (units run
sequentially within a process).  Under the thread backend interleaved
units can observe each other's increments, so aggregated totals are an
upper bound there.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict

from repro.obs import trace as obs_trace

Counters = Dict[str, int]

_PROVIDERS: Dict[str, Callable[[], Counters]] = {}


def register_provider(name: str, fn: Callable[[], Counters]) -> None:
    """Register (or replace) a named counter provider."""
    _PROVIDERS[name] = fn


def snapshot() -> Dict[str, Counters]:
    return {name: dict(fn()) for name, fn in _PROVIDERS.items()}


def delta(before: Dict[str, Counters],
          after: Dict[str, Counters]) -> Dict[str, Counters]:
    """Per-provider counter increments between two snapshots."""
    out: Dict[str, Counters] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        diff = {key: value - base.get(key, 0)
                for key, value in counters.items()
                if value - base.get(key, 0)}
        if diff:
            out[name] = diff
    return out


def accumulate(total: Dict[str, Counters],
               increment: Dict[str, Counters]) -> None:
    """Sum ``increment`` into ``total`` in place."""
    for name, counters in increment.items():
        bucket = total.setdefault(name, {})
        for key, value in counters.items():
            bucket[key] = bucket.get(key, 0) + value


# -- solve-phase wall-clock profile -------------------------------------------
#
# The solve hot path (program compilation, simulation, SVA monitoring, the
# BMC driver around them) reports per-phase wall time here.  Times are kept
# as integer microseconds so the provider fits the ``Counters`` contract:
# monotonic ints whose deltas the engine can ship back from workers and
# accumulate, exactly like the compile-cache counters.

_PROFILE: Dict[str, int] = {}
_PROFILE_LOCK = threading.Lock()


def add_time(phase: str, seconds: float) -> None:
    """Charge ``seconds`` of wall time to ``phase`` (``<phase>_us`` counter).

    When a trace is active the same measurement is also recorded as a
    ``solve.<phase>`` child span (see
    :func:`repro.obs.trace.record_phase`), so ``/tracez`` attributes a
    slow request's time to compile/simulate/monitor/bmc without a
    second timer in the hot path.
    """
    micros = int(seconds * 1_000_000)
    if micros <= 0:
        return
    key = f"{phase}_us"
    with _PROFILE_LOCK:
        _PROFILE[key] = _PROFILE.get(key, 0) + micros
    obs_trace.record_phase(phase, seconds)


def profile_counters() -> Counters:
    """Metrics provider: cumulative per-phase solve times (microseconds)."""
    with _PROFILE_LOCK:
        return dict(_PROFILE)


register_provider("solve_profile", profile_counters)
