"""Counter providers sampled around engine work units.

Subsystems with process-local monotonic counters (e.g. the compile cache)
register a provider here at import time.  The engine snapshots all
providers before and after each unit, ships the per-unit delta back from
the worker with the unit's result, and accumulates the deltas in the
parent process — the only way to surface worker-side counters when units
run in a process pool.

Deltas are exact under the serial and process backends (units run
sequentially within a process).  Under the thread backend interleaved
units can observe each other's increments, so aggregated totals are an
upper bound there.
"""

from __future__ import annotations

from typing import Callable, Dict

Counters = Dict[str, int]

_PROVIDERS: Dict[str, Callable[[], Counters]] = {}


def register_provider(name: str, fn: Callable[[], Counters]) -> None:
    """Register (or replace) a named counter provider."""
    _PROVIDERS[name] = fn


def snapshot() -> Dict[str, Counters]:
    return {name: dict(fn()) for name, fn in _PROVIDERS.items()}


def delta(before: Dict[str, Counters],
          after: Dict[str, Counters]) -> Dict[str, Counters]:
    """Per-provider counter increments between two snapshots."""
    out: Dict[str, Counters] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        diff = {key: value - base.get(key, 0)
                for key, value in counters.items()
                if value - base.get(key, 0)}
        if diff:
            out[name] = diff
    return out


def accumulate(total: Dict[str, Counters],
               increment: Dict[str, Counters]) -> None:
    """Sum ``increment`` into ``total`` in place."""
    for name, counters in increment.items():
        bucket = total.setdefault(name, {})
        for key, value in counters.items():
            bucket[key] = bucket.get(key, 0) + value
