"""Deterministic seed derivation for parallel stage execution.

The old pipeline threaded one ``random.Random`` through every stage, so
the stream a design consumed depended on every design processed before it
— serializing the whole pipeline.  Here every work unit derives its own
independent stream from ``(global_seed, stage_name, unit_id, label)`` via
SHA-256, so results are byte-identical no matter how units are scheduled
across workers (and no matter Python's per-process hash randomization,
which is why ``hash()`` is not used).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

_SEP = b"\x1f"  # unit separator: keeps ("ab","c") distinct from ("a","bc")


def derive_seed(*parts: object) -> int:
    """A stable 64-bit seed from an arbitrary tuple of parts.

    Parts are rendered with their type name so ``1`` and ``"1"`` derive
    different streams.
    """
    payload = _SEP.join(
        f"{type(part).__name__}:{part}".encode("utf-8") for part in parts)
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(*parts: object) -> random.Random:
    """A fresh ``random.Random`` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))


@dataclass(frozen=True)
class StageContext:
    """Everything a per-unit stage callable needs besides its payload.

    Picklable, so it travels to process-pool workers alongside the unit.
    ``rng(label)`` hands out independent streams for independent concerns
    within one unit (e.g. ``rng("sva")`` vs ``rng("bugs")``), all derived
    from ``(global_seed, stage_name, unit_id, label)``.
    """

    global_seed: int
    stage_name: str
    unit_id: str

    def seed_for(self, label: str = "") -> int:
        return derive_seed(self.global_seed, self.stage_name, self.unit_id,
                           label)

    def rng(self, label: str = "") -> random.Random:
        return random.Random(self.seed_for(label))
