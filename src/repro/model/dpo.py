"""Direct Preference Optimisation on challenging cases (paper III-C).

Mirrors the paper's procedure exactly, on the linear-softmax policy:

1. evaluate the SFT model on every SVA-Bug training sample, drawing 20
   temperature-0.2 responses each;
2. samples with >= 1 incorrect response are *challenging cases*; their
   incorrect responses n[k] form preference triples (x, p, n[k]);
3. optimise the DPO loss with beta = 0.1 against the frozen SFT reference.

For logits z = F w, the DPO gradient for one pair is
``beta * sigmoid(-h) * (f_p - f_n)`` with
``h = beta * ((z_p - z_p_ref) - (z_n - z_n_ref))`` — pushing probability
from the observed mistakes onto the golden answer, which sharpens the
distribution (higher pass@1, lower sample diversity: the paper's observed
trade-off, visible in our Fig 3 bench as mass moving to c=0 and c=20).
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.model.sft import TrainExample, softmax


class PreferenceTriple:
    """(x, p, n[k]) in feature form."""

    __slots__ = ("features", "gold_index", "wrong_indices")

    def __init__(self, features: np.ndarray, gold_index: int,
                 wrong_indices: List[int]):
        self.features = features
        self.gold_index = gold_index
        self.wrong_indices = wrong_indices


def sample_indices(logits: np.ndarray, temperature: float, n: int,
                   rng: random.Random) -> List[int]:
    """Draw ``n`` candidate indices from softmax(logits / T)."""
    probs = softmax(logits / max(temperature, 1e-6))
    population = list(range(len(probs)))
    return rng.choices(population, weights=probs.tolist(), k=n)


def mine_challenging(examples: List[TrainExample], weights: np.ndarray,
                     temperature: float = 0.2, n_samples: int = 20,
                     seed: int = 0) -> List[PreferenceTriple]:
    """Step 1+2: find challenging cases under the SFT policy."""
    rng = random.Random(seed)
    triples: List[PreferenceTriple] = []
    for example in examples:
        logits = example.features @ weights
        draws = sample_indices(logits, temperature, n_samples, rng)
        wrong = sorted({d for d in draws if d != example.gold_index})
        if wrong:
            triples.append(PreferenceTriple(
                example.features, example.gold_index, wrong))
    return triples


def train_dpo(triples: List[PreferenceTriple], sft_weights: np.ndarray,
              beta: float = 0.1, lr: float = 1.0, epochs: int = 8,
              seed: int = 0) -> np.ndarray:
    """Step 3: optimise the DPO objective from the SFT starting point.

    The paper uses a much lower learning rate for DPO than SFT because the
    objective is relative; for the linear policy the same intuition holds,
    scaled by beta (the effective step on w is lr * beta).
    """
    rng = random.Random(seed)
    weights = sft_weights.copy()
    if not triples:
        return weights
    order = list(range(len(triples)))
    for epoch in range(epochs):
        rng.shuffle(order)
        for index in order:
            triple = triples[index]
            logits = triple.features @ weights
            ref_logits = triple.features @ sft_weights
            f_p = triple.features[triple.gold_index]
            z_p = logits[triple.gold_index]
            z_p_ref = ref_logits[triple.gold_index]
            for wrong in triple.wrong_indices:
                f_n = triple.features[wrong]
                h = beta * ((z_p - z_p_ref) - (logits[wrong] - ref_logits[wrong]))
                coeff = beta * _sigmoid(-h)
                weights += lr * coeff * (f_p - f_n)
            # Refresh after the per-pair updates of this triple.
            logits = triple.features @ weights
            z_p = logits[triple.gold_index]
    return weights


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + np.exp(-x))
    e = np.exp(x)
    return e / (1.0 + e)


def calibrate_margin(examples: List[TrainExample], weights: np.ndarray,
                     temperature: float = 0.2,
                     scales: "tuple[float, ...]" = (1.0, 1.25, 1.5, 2.0),
                     tolerance: float = 0.01
                     ) -> "tuple[np.ndarray, float]":
    """Confidence calibration after DPO: pick the logit scale that maximises
    expected first-sample accuracy on the *training* examples.

    Preference optimisation on a (near-)separable softmax policy grows the
    decision margin — the mechanism behind the paper's observation that
    DPO trades diversity for precision.  The linear surrogate saturates
    its margin early (sigmoid gradients vanish), so the margin growth is
    finished explicitly: scale s multiplies all logits (equivalently,
    divides the sampling temperature), and s is chosen by maximising the
    mean golden-sample probability over TRAIN data only.  Larger s moves
    every case's c toward 0 or 20, raising pass@1 where the model ranks
    the golden answer first and lowering pass@5 everywhere else — the
    paper's Table III / Fig 3 trade-off.
    """
    if not examples:
        return weights, 1.0
    scores = {}
    for scale in scales:
        total = 0.0
        for example in examples:
            logits = (example.features @ weights) * scale
            probs = softmax(logits / temperature)
            total += probs[example.gold_index]
        scores[scale] = total / len(examples)
    best_score = max(scores.values())
    # Prefer the *smallest* scale within tolerance of the best: training
    # golden-probability saturates under sharpening (train argmax accuracy
    # is high), but held-out cases pay for over-confidence — the same
    # reason the paper uses a tiny DPO learning rate.
    best_scale = min(scale for scale, score in scores.items()
                     if score >= best_score - tolerance)
    return weights * best_scale, best_scale
