"""Feature extraction for repair-candidate ranking.

The extractor sees exactly what the paper's model sees at inference time —
the question: buggy SV code (with its SVAs), simulation logs, and the spec.
Everything else is derived:

- failing assertion labels are parsed from the log lines;
- the assertion's fan-in cone (via :class:`repro.verilog.analysis.DefUse`)
  gives the localization features;
- the pretrained n-gram LM gives per-line surprisal (the PT stage's
  contribution);
- literal-consistency compares a line's numeric literals against the rest
  of the module and the spec (a mutated constant usually appears nowhere
  else; the restored one usually does).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set

import numpy as np

from repro.bugs.classify import assertion_expr_signals
from repro.model.candidates import RepairCandidate
from repro.model.ngram_lm import NgramLM
from repro.verilog.analysis import DefUse
from repro.verilog.parser import parse_module

_LOG_RE = re.compile(r"failed assertion\s+[\w$]+\.([\w$]+)")
_LITERAL_RE = re.compile(r"\d+'[sS]?[bdohBDOH][0-9a-fA-F_]+|\b\d+\b")

OP_NAMES = ["op_swap", "negate_cond", "const_nudge", "const_bitflip",
            "ident_swap", "ternary_swap", "concat_swap", "const_set",
            "rhs_swap"]

FEATURE_NAMES = [
    "bias",
    "in_cone",
    "drives_assert_signal",
    "cone_depth_score",
    "lm_old_surprisal",
    "lm_delta",
    "lit_consistency_delta",
    "is_cond_line",
    "line_pos",
    "case_label_integrity_delta",
    "fix_trivial_const",
    "fix_cone_refs_delta",
] + [f"op_{name}" for name in OP_NAMES]

DIM = len(FEATURE_NAMES)


def parse_failing_labels(logs: str) -> List[str]:
    """Assertion labels mentioned in the failure log."""
    labels: List[str] = []
    for match in _LOG_RE.finditer(logs):
        label = match.group(1)
        if label not in labels:
            labels.append(label)
    return labels


class CaseContext:
    """Per-case precomputation shared by all candidates."""

    def __init__(self, buggy_source_with_sva: str, spec: str, logs: str,
                 lm: Optional[NgramLM] = None):
        self.source = buggy_source_with_sva
        self.spec = spec
        self.logs = logs
        self.lm = lm
        self.module = parse_module(buggy_source_with_sva)
        self.defuse = DefUse(self.module)

        self.labels = parse_failing_labels(logs)
        signals: List[str] = []
        for label in self.labels:
            for name in assertion_expr_signals(self.module, label):
                if name not in signals:
                    signals.append(name)
        self.assert_signals = signals

        self.cone = self.defuse.fanin_cone(signals) if signals else set()
        self.cone_lines = (self.defuse.cone_lines(signals)
                           if signals else set())
        self.depths = self._signal_depths(signals)

        self.lines = buggy_source_with_sva.splitlines()
        self.n_lines = max(len(self.lines), 1)
        self._surprisal_cache: Dict[str, float] = {}
        self._module_literal_counts = self._count_literals()
        self._targets_by_line = self._build_targets_by_line()
        self._case_labels_by_line = self._build_case_label_map()
        self._mean_surprisal = self._module_mean_surprisal()

    # -- helpers -----------------------------------------------------------

    def _signal_depths(self, roots: List[str]) -> Dict[str, int]:
        depths = {name: 0 for name in roots}
        frontier = list(roots)
        for depth in range(1, 8):
            new = []
            for name in frontier:
                for driver in self.defuse.drivers.get(name, ()):
                    if driver not in depths:
                        depths[driver] = depth
                        new.append(driver)
            if not new:
                break
            frontier = new
        return depths

    def _count_literals(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for text in (self.source, self.spec):
            for match in _LITERAL_RE.finditer(text):
                counts[match.group()] = counts.get(match.group(), 0) + 1
        return counts

    def surprisal(self, line: str) -> float:
        if self.lm is None:
            return 10.0
        cached = self._surprisal_cache.get(line)
        if cached is None:
            cached = self.lm.line_surprisal(line)
            self._surprisal_cache[line] = cached
        return cached

    def _module_mean_surprisal(self) -> float:
        """Mean line surprisal of this module — the normaliser that keeps
        the LM features comparable across domains (hand-written designs sit
        at a uniformly higher absolute surprisal than corpus designs)."""
        if self.lm is None:
            return 10.0
        scores = [self.surprisal(line.strip())
                  for line in self.lines if line.strip()]
        if not scores:
            return 10.0
        return max(sum(scores) / len(scores), 1e-6)

    def _consistency(self, line: str) -> float:
        """Fraction of the line's literals that occur elsewhere in the
        module or spec."""
        literals = _LITERAL_RE.findall(line)
        if not literals:
            return 0.5
        supported = 0
        for literal in literals:
            # The line's own occurrence contributes 1; 'elsewhere' means
            # a count of at least 2.
            if self._module_literal_counts.get(literal, 0) >= 2:
                supported += 1
        return supported / len(literals)

    def _build_targets_by_line(self) -> Dict[int, List[str]]:
        """line -> signals driven by the statement on that line (including
        condition-header lines, which 'drive' everything they gate)."""
        from repro.verilog import ast

        mapping: Dict[int, Set[str]] = {}

        def note(line: int, names: List[str]) -> None:
            mapping.setdefault(line, set()).update(names)

        def target_names(target):
            if isinstance(target, ast.Ident):
                return [target.name]
            if isinstance(target, (ast.BitSelect, ast.PartSelect)):
                return target_names(target.base)
            if isinstance(target, ast.Concat):
                names = []
                for part in target.parts:
                    names.extend(target_names(part))
                return names
            return []

        def visit(stmt):
            """Returns all targets assigned under stmt."""
            if isinstance(stmt, ast.Block):
                all_targets = []
                for child in stmt.stmts:
                    all_targets.extend(visit(child))
                return all_targets
            if isinstance(stmt, ast.Assignment):
                names = target_names(stmt.target)
                note(stmt.line, names)
                return names
            if isinstance(stmt, ast.If):
                inner = visit(stmt.then)
                if stmt.other is not None:
                    inner.extend(visit(stmt.other))
                for node in ast.walk(stmt.cond):
                    note(node.line, inner)
                return inner
            if isinstance(stmt, ast.Case):
                inner = []
                for item in stmt.items:
                    inner.extend(visit(item.body))
                for node in ast.walk(stmt.subject):
                    note(node.line, inner)
                return inner
            return []

        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                note(item.line, target_names(item.target))
            elif isinstance(item, ast.AlwaysBlock):
                visit(item.body)
        return {line: sorted(names) for line, names in mapping.items()}

    def line_targets(self, line: int) -> List[str]:
        return self._targets_by_line.get(line, [])

    _IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

    def _cone_ref_score(self, line: str) -> float:
        """Fraction of a line's RHS identifiers that belong to the failing
        assertion's fan-in cone.  A repair that reconnects the cone (e.g.
        'valid <= en_q;') scores higher than one that severs it
        ('valid <= 1'b0;') — the signal-tracing instinct of a verification
        engineer, in feature form."""
        rhs = line.split("<=")[-1].split("=")[-1]
        idents = [name for name in self._IDENT_RE.findall(rhs)
                  if not name.isdigit()]
        idents = [name for name in idents
                  if name in self.defuse.drivers or name in self.cone
                  or name in self._targets_by_line]
        if not idents:
            return 0.0
        hits = sum(1 for name in idents if name in self.cone)
        return hits / len(idents)

    # -- case-label integrity -------------------------------------------------

    def _build_case_label_map(self) -> Dict[int, List[int]]:
        """label-line -> all constant label values of the enclosing case.

        A mutated case label typically leaves the enclosing ``case`` with a
        duplicate value and a hole; the repair that restores a
        duplicate-free, hole-free label set is almost always the golden
        one.  The map gives each label line the label multiset of its case.
        """
        from repro.verilog import ast

        mapping: Dict[int, List[int]] = {}

        def visit(stmt):
            if isinstance(stmt, ast.Block):
                for child in stmt.stmts:
                    visit(child)
            elif isinstance(stmt, ast.If):
                visit(stmt.then)
                if stmt.other is not None:
                    visit(stmt.other)
            elif isinstance(stmt, ast.Case):
                values: List[int] = []
                label_lines: List[int] = []
                for item in stmt.items:
                    for label in item.labels:
                        if isinstance(label, ast.Number) and not label.xmask:
                            values.append(label.value)
                            label_lines.append(label.line)
                    visit(item.body)
                for line in label_lines:
                    mapping[line] = values

        for item in self.module.items:
            if isinstance(item, ast.AlwaysBlock):
                visit(item.body)
        return mapping

    @staticmethod
    def _label_set_badness(values: List[int]) -> int:
        """Duplicates + holes in [0, max] — 0 for a clean contiguous set."""
        if not values:
            return 0
        duplicates = len(values) - len(set(values))
        holes = (max(values) + 1) - len(set(values))
        return duplicates + max(holes, 0)

    def _case_integrity_delta(self, candidate: RepairCandidate) -> float:
        """badness(before) - badness(after) for case-label edits; 0 for
        candidates that do not touch a constant case label."""
        values = self._case_labels_by_line.get(candidate.line)
        if values is None:
            return 0.0
        old_vals = _label_values(candidate.old_line)
        new_vals = _label_values(candidate.new_line)
        if len(old_vals) != 1 or len(new_vals) != 1 or old_vals == new_vals:
            return 0.0
        before = self._label_set_badness(values)
        patched = list(values)
        try:
            patched.remove(old_vals[0])
        except ValueError:
            return 0.0
        patched.append(new_vals[0])
        after = self._label_set_badness(patched)
        return float(max(min(before - after, 2), -2)) / 2.0

    # -- the feature vector ---------------------------------------------------

    def vector(self, candidate: RepairCandidate) -> np.ndarray:
        features = np.zeros(DIM)
        i = 0
        features[i] = 1.0; i += 1

        in_cone = candidate.line in self.cone_lines
        features[i] = 1.0 if in_cone else 0.0; i += 1

        targets = self.line_targets(candidate.line)
        direct = bool(set(targets) & set(self.assert_signals))
        features[i] = 1.0 if direct else 0.0; i += 1

        depth = min((self.depths.get(t, 9) for t in targets), default=9)
        features[i] = 1.0 / (1.0 + depth); i += 1

        old_s = self.surprisal(candidate.old_line)
        new_s = self.surprisal(candidate.new_line)
        features[i] = old_s / (2.0 * self._mean_surprisal); i += 1
        features[i] = (old_s - new_s) / (2.0 * self._mean_surprisal); i += 1

        features[i] = (self._consistency(candidate.new_line)
                       - self._consistency(candidate.old_line)); i += 1

        stripped = candidate.old_line.lstrip()
        is_cond = stripped.startswith(("if ", "if(", "else if", "case ",
                                       "case("))
        features[i] = 1.0 if is_cond else 0.0; i += 1

        features[i] = candidate.line / self.n_lines; i += 1

        features[i] = self._case_integrity_delta(candidate); i += 1

        features[i] = 1.0 if _is_trivial_const_fix(candidate) else 0.0; i += 1

        features[i] = (self._cone_ref_score(candidate.new_line)
                       - self._cone_ref_score(candidate.old_line)); i += 1

        for op in OP_NAMES:
            features[i] = 1.0 if op in candidate.op_names else 0.0
            i += 1
        return features

    def matrix(self, candidates: List[RepairCandidate]) -> np.ndarray:
        if not candidates:
            return np.zeros((0, DIM))
        return np.stack([self.vector(c) for c in candidates])


_TRIVIAL_CONST_RE = re.compile(r"<?=\s*(\d+'[sS]?[bdohBDOH][0-9a-fA-F_]+|\d+)\s*;\s*$")


def _is_trivial_const_fix(candidate: RepairCandidate) -> bool:
    """True when the fix replaces a non-constant RHS with a bare literal —
    the degenerate 'reset it to zero' repair that the n-gram LM loves
    (reset lines dominate healthy RTL) but that is rarely the real fix."""
    new_match = _TRIVIAL_CONST_RE.search(candidate.new_line)
    if new_match is None:
        return False
    old_match = _TRIVIAL_CONST_RE.search(candidate.old_line)
    return old_match is None


def _label_values(line: str) -> List[int]:
    """Constant values of the sized literals on a case-label line."""
    from repro.verilog.lexer import parse_number_literal

    values = []
    for match in re.finditer(r"\d+'[sS]?[bdohBDOH][0-9a-fA-F_]+", line):
        try:
            _, value, xmask = parse_number_literal(match.group())
        except Exception:
            continue
        if not xmask:
            values.append(value)
    return values
