"""Supervised fine-tuning: cross-entropy over the candidate space.

The policy is a linear softmax over repair candidates,
``pi(c | x) = softmax(F(x) w)_c`` — the smallest model family in which the
paper's three-stage recipe (PT features -> supervised ranking -> preference
sharpening) is faithfully expressible and genuinely *trained* from the
generated data.

``TrainExample`` holds a case's feature matrix and the golden candidate
index; :func:`train_sft` runs mini-batchless SGD with L2 regularisation.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.model.features import DIM


class TrainExample:
    """One ranking example: candidates' features + golden index."""

    __slots__ = ("features", "gold_index", "weight", "tag")

    def __init__(self, features: np.ndarray, gold_index: int,
                 weight: float = 1.0, tag: str = ""):
        if not 0 <= gold_index < features.shape[0]:
            raise ValueError(
                f"gold index {gold_index} out of range for "
                f"{features.shape[0]} candidates")
        self.features = features
        self.gold_index = gold_index
        self.weight = weight
        self.tag = tag


class SftStats:
    def __init__(self):
        self.epoch_losses: List[float] = []
        self.final_train_accuracy = 0.0


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


def train_sft(examples: List[TrainExample], epochs: int = 12,
              lr: float = 0.5, l2: float = 1e-4,
              seed: int = 0,
              init: Optional[np.ndarray] = None
              ) -> "tuple[np.ndarray, SftStats]":
    """Train the ranker; returns (weights, stats)."""
    rng = random.Random(seed)
    weights = np.zeros(DIM) if init is None else init.copy()
    stats = SftStats()
    if not examples:
        return weights, stats
    order = list(range(len(examples)))
    for epoch in range(epochs):
        rng.shuffle(order)
        total_loss = 0.0
        step_lr = lr / (1.0 + 0.3 * epoch)
        for index in order:
            example = examples[index]
            logits = example.features @ weights
            probs = softmax(logits)
            loss = -np.log(max(probs[example.gold_index], 1e-12))
            total_loss += loss * example.weight
            grad = example.features.T @ probs \
                - example.features[example.gold_index]
            weights -= step_lr * example.weight * (grad + l2 * weights)
        stats.epoch_losses.append(total_loss / len(examples))
    correct = 0
    for example in examples:
        logits = example.features @ weights
        if int(np.argmax(logits)) == example.gold_index:
            correct += 1
    stats.final_train_accuracy = correct / len(examples)
    return weights, stats
