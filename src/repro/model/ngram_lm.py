"""Interpolated n-gram language model — the pretraining (PT) stage.

Trained by next-token counting over the Verilog-PT dataset (clean and
failing code alike, as in the paper), the model serves two purposes:

- line surprisal for the downstream ranker: a mutated line usually has a
  higher per-token negative log-likelihood than the surrounding healthy
  code, giving the SFT features their strongest localization signal — the
  concrete mechanism behind the paper's claim that continual pretraining
  boosts downstream debugging performance;
- a sanity metric (perplexity) used by the PT ablation bench.

Trigram/bigram/unigram interpolation with fixed weights; unseen tokens
fall through to a uniform floor over the observed vocabulary.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List

from repro.model.tokenizer import BOS, EOS, tokenize_line, tokenize_text

# Interpolation weights: 4-gram, trigram, bigram, unigram.  The 4-gram
# level is load-bearing: it is what lets the model connect a line's target
# identifier to the operator used later in the line (e.g. 'lt_flag <= a <'
# vs 'lt_flag <= a >'), which trigram context is one token too short for.
_LAMBDAS = (0.35, 0.30, 0.23, 0.12)


class NgramLM:
    """Counting language model over per-line token streams."""

    def __init__(self):
        self.unigrams: Counter = Counter()
        self.bigrams: Dict[str, Counter] = defaultdict(Counter)
        self.trigrams: Dict[tuple, Counter] = defaultdict(Counter)
        self.fourgrams: Dict[tuple, Counter] = defaultdict(Counter)
        self.total_tokens = 0
        self.trained = False

    # -- training -------------------------------------------------------------

    def train_texts(self, texts: Iterable[str]) -> None:
        """Accumulate counts from raw source texts (one call per dataset)."""
        for text in texts:
            for tokens in tokenize_text(text):
                self._count_line(tokens)
        self.trained = True

    def _count_line(self, tokens: List[str]) -> None:
        stream = [BOS, BOS, BOS] + tokens + [EOS]
        for i in range(3, len(stream)):
            w3, w2, w1, w0 = stream[i - 3], stream[i - 2], stream[i - 1], stream[i]
            self.unigrams[w0] += 1
            self.bigrams[w1][w0] += 1
            self.trigrams[(w2, w1)][w0] += 1
            self.fourgrams[(w3, w2, w1)][w0] += 1
            self.total_tokens += 1

    # -- scoring -----------------------------------------------------------------

    @property
    def vocab_size(self) -> int:
        return max(len(self.unigrams), 1)

    def token_prob(self, w3: str, w2: str, w1: str, w0: str) -> float:
        floor = 1.0 / (self.vocab_size * 10)
        p_uni = self.unigrams.get(w0, 0) / max(self.total_tokens, 1)
        bi = self.bigrams.get(w1)
        p_bi = bi.get(w0, 0) / sum(bi.values()) if bi else 0.0
        tri = self.trigrams.get((w2, w1))
        p_tri = tri.get(w0, 0) / sum(tri.values()) if tri else 0.0
        four = self.fourgrams.get((w3, w2, w1))
        p_four = four.get(w0, 0) / sum(four.values()) if four else 0.0
        l4, l3, l2, l1 = _LAMBDAS
        p = l4 * p_four + l3 * p_tri + l2 * p_bi + l1 * p_uni
        return max(p, floor)

    def line_surprisal(self, line: str) -> float:
        """Mean negative log2 probability per token of one source line.

        Untrained models return a constant (uninformative) score — the
        "base model without PT" configuration in the ablations.
        """
        tokens = tokenize_line(line.strip())
        if not tokens or not self.trained:
            return 10.0
        stream = [BOS, BOS, BOS] + tokens + [EOS]
        total = 0.0
        count = 0
        for i in range(3, len(stream)):
            p = self.token_prob(stream[i - 3], stream[i - 2], stream[i - 1],
                                stream[i])
            total += -math.log2(p)
            count += 1
        return total / max(count, 1)

    def perplexity(self, text: str) -> float:
        """Corpus-level perplexity of a source text."""
        lines = tokenize_text(text)
        if not lines:
            return float("inf")
        total = 0.0
        count = 0
        for tokens in lines:
            stream = [BOS, BOS, BOS] + tokens + [EOS]
            for i in range(3, len(stream)):
                p = self.token_prob(stream[i - 3], stream[i - 2],
                                    stream[i - 1], stream[i])
                total += -math.log2(p)
                count += 1
        return 2 ** (total / max(count, 1))
