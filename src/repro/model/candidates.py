"""Repair-candidate enumeration: the models' decoding space.

Because the mutation operators are closed under inversion, enumerating all
single-line mutations *of the buggy design* yields a candidate set that
contains the golden fix (the inverse of whatever was injected).  A model's
"answer" is a choice of candidate: ``(line, repaired line text)``.

Enumeration applies each mutation to a single parsed copy, re-emits the
canonical text, diffs, and reverts — no per-candidate deep copies.
Candidates that change zero or multiple lines are skipped; duplicates (two
operators producing the same edit, e.g. ``+1`` and ``^bit0`` on an even
constant) are merged, keeping both operator tags.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.verilog import ast
from repro.verilog.parser import parse_module


class RepairCandidate:
    """One possible answer: replace ``line`` with ``new_line``."""

    __slots__ = ("line", "old_line", "new_line", "op_names", "kinds",
                 "descriptions")

    def __init__(self, line: int, old_line: str, new_line: str,
                 op_names: List[str], kinds: List[str],
                 descriptions: List[str]):
        self.line = line
        self.old_line = old_line
        self.new_line = new_line
        self.op_names = op_names
        self.kinds = kinds
        self.descriptions = descriptions

    @property
    def key(self):
        return (self.line, self.new_line)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RepairCandidate(line={self.line}, "
                f"{self.old_line!r} -> {self.new_line!r})")


class CandidateSpace:
    """All repair candidates of one buggy source, with lookup helpers."""

    def __init__(self, source: str, candidates: List[RepairCandidate]):
        self.source = source
        self.candidates = candidates
        self._by_key: Dict[tuple, RepairCandidate] = {
            c.key: c for c in candidates}

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    def find(self, line: int, new_line: str) -> Optional[RepairCandidate]:
        return self._by_key.get((line, " ".join(new_line.split())))

    def golden_index(self, line: int, fixed_line: str) -> Optional[int]:
        """Index of the golden candidate, or None when out of space."""
        target = (line, " ".join(fixed_line.split()))
        for i, candidate in enumerate(self.candidates):
            if candidate.key == target:
                return i
        return None


def enumerate_repairs(buggy_source: str,
                      module: Optional[ast.Module] = None) -> CandidateSpace:
    """Build the candidate space for ``buggy_source``.

    ``module`` may be supplied to skip re-parsing (it will be mutated and
    restored in place).

    A mutation is confined to one module item, so only that item is
    re-emitted per candidate — the canonical emission is exactly
    ``header + item lines + 'endmodule'`` (see
    :func:`repro.verilog.writer.write_item_lines`), which keeps wide
    modules (32-entry register files, 32-lane muxes) tractable.
    """
    from repro.bugs.mutators import (
        ModuleMutationContext,
        enumerate_item_mutations,
    )
    from repro.verilog.writer import write_header_lines, write_item_lines

    own_module = module if module is not None else parse_module(buggy_source)
    header_lines = write_header_lines(own_module)
    context = ModuleMutationContext(own_module)

    merged: Dict[tuple, RepairCandidate] = {}
    all_lines: List[str] = list(header_lines)
    offset = len(header_lines)
    per_item: List[tuple] = []
    for item in own_module.items:
        item_lines = write_item_lines(item)
        per_item.append((item, item_lines, offset))
        all_lines.extend(item_lines)
        offset += len(item_lines)
    all_lines.append("endmodule")
    baseline = "\n".join(all_lines) + "\n"

    for item, item_lines, item_offset in per_item:
        for mutation in enumerate_item_mutations(item, context):
            mutation.apply()
            emitted = write_item_lines(item)
            mutation.revert()
            if emitted == item_lines or len(emitted) != len(item_lines):
                continue
            diffs = [i for i, (a, b) in enumerate(zip(item_lines, emitted))
                     if a != b]
            if len(diffs) != 1:
                continue
            index = diffs[0]
            line_no = item_offset + index + 1
            old_line = " ".join(item_lines[index].split())
            new_line = " ".join(emitted[index].split())
            key = (line_no, new_line)
            existing = merged.get(key)
            if existing is not None:
                if mutation.op_name not in existing.op_names:
                    existing.op_names.append(mutation.op_name)
                    existing.kinds.append(mutation.kind.value)
                    existing.descriptions.append(mutation.description)
            else:
                merged[key] = RepairCandidate(
                    line_no, old_line, new_line, [mutation.op_name],
                    [mutation.kind.value], [mutation.description])
    ordered = sorted(merged.values(), key=lambda c: (c.line, c.new_line))
    return CandidateSpace(baseline, ordered)
