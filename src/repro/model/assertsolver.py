"""The AssertSolver model: PT -> SFT -> DPO -> sampling inference.

Usage mirrors the paper's phases::

    model = AssertSolver(seed=0)
    model.pretrain(bundle.verilog_pt)                       # PT
    model.train_sft(bundle.sva_bug_train, bundle.verilog_bug)  # SFT
    model.train_dpo(bundle.sva_bug_train)                   # DPO
    responses = model.generate(problem, n=20)               # inference

``generate`` returns n JSON-serialisable responses, each with the candidate
buggy line, the suggested fix and a CoT — the output contract of the
paper's Fig. 2 (III).
"""

from __future__ import annotations

import json
import random
from typing import Iterable, List, Optional

import numpy as np

from repro.datagen.records import SvaBugEntry, VerilogBugEntry, VerilogPTEntry
from repro.model.candidates import CandidateSpace, RepairCandidate, enumerate_repairs
from repro.model.dpo import (calibrate_margin, mine_challenging,
                             sample_indices, train_dpo)
from repro.model.features import CaseContext
from repro.model.ngram_lm import NgramLM
from repro.model.sft import TrainExample, train_sft


class Problem:
    """An inference input: exactly the question fields of the benchmark."""

    __slots__ = ("spec", "source", "logs")

    def __init__(self, spec: str, source: str, logs: str):
        self.spec = spec
        self.source = source
        self.logs = logs

    @classmethod
    def from_entry(cls, entry: SvaBugEntry) -> "Problem":
        return cls(entry.spec, entry.buggy_source_with_sva, entry.logs)


class SolverResponse:
    """One model response in the paper's JSON contract."""

    __slots__ = ("line", "buggy_line", "fix", "cot")

    def __init__(self, line: int, buggy_line: str, fix: str, cot: str = ""):
        self.line = line
        self.buggy_line = buggy_line
        self.fix = fix
        self.cot = cot

    def to_json(self) -> str:
        return json.dumps({
            "buggy_line_number": self.line,
            "buggy_line": self.buggy_line,
            "suggested_fix": self.fix,
            "chain_of_thought": self.cot,
        })

    @classmethod
    def from_json(cls, text: str) -> "SolverResponse":
        payload = json.loads(text)
        return cls(int(payload["buggy_line_number"]), payload["buggy_line"],
                   payload["suggested_fix"],
                   payload.get("chain_of_thought", ""))

    def __repr__(self) -> str:  # pragma: no cover
        return f"SolverResponse(line={self.line}, fix={self.fix!r})"


class AssertSolver:
    """Trainable surrogate model.

    Three checkpoints are reachable from one instance:

    - fresh instance         -> the *base model* (uniform policy, no PT);
    - after pretrain+sft     -> the *SFT model*;
    - after train_dpo        -> *AssertSolver* proper.

    ``clone_checkpoint`` snapshots the current stage so the Table III
    ablation can hold all three.
    """

    def __init__(self, seed: int = 0, temperature: float = 0.2,
                 name: str = "AssertSolver"):
        self.seed = seed
        self.temperature = temperature
        self.name = name
        self.lm: Optional[NgramLM] = None
        self.weights: Optional[np.ndarray] = None
        self.sft_stats = None
        self.n_challenging = 0
        self.margin_scale = 1.0
        self._train_examples: List[TrainExample] = []

    # -- training ------------------------------------------------------------

    def pretrain(self, pt_entries: Iterable[VerilogPTEntry]) -> None:
        """PT stage: fit the n-gram LM on the Verilog-PT dataset."""
        lm = NgramLM()
        lm.train_texts(entry.text() for entry in pt_entries)
        self.lm = lm

    def _example_for_entry(self, entry: SvaBugEntry,
                           weight: float = 1.0) -> Optional[TrainExample]:
        space = enumerate_repairs(entry.buggy_source_with_sva)
        gold = space.golden_index(entry.record.line, entry.record.fixed_line)
        if gold is None:
            return None
        context = CaseContext(entry.buggy_source_with_sva, entry.spec,
                              entry.logs, self.lm)
        return TrainExample(context.matrix(space.candidates), gold,
                            weight=weight, tag=entry.record.design_name)

    def _example_for_verilog_bug(self, entry: VerilogBugEntry,
                                 weight: float = 0.3
                                 ) -> Optional[TrainExample]:
        space = enumerate_repairs(entry.record.buggy_source)
        gold = space.golden_index(entry.record.line, entry.record.fixed_line)
        if gold is None:
            return None
        context = CaseContext(entry.record.buggy_source, entry.spec, logs="",
                              lm=self.lm)
        return TrainExample(context.matrix(space.candidates), gold,
                            weight=weight, tag=entry.record.design_name)

    def train_sft(self, sva_bug_entries: Iterable[SvaBugEntry],
                  verilog_bug_entries: Iterable[VerilogBugEntry] = (),
                  epochs: int = 12, lr: float = 0.5) -> None:
        """SFT stage on SVA-Bug (primary) + Verilog-Bug (auxiliary)."""
        examples: List[TrainExample] = []
        for entry in sva_bug_entries:
            example = self._example_for_entry(entry)
            if example is not None:
                examples.append(example)
        for entry in verilog_bug_entries:
            example = self._example_for_verilog_bug(entry)
            if example is not None:
                examples.append(example)
        self._train_examples = examples
        self.weights, self.sft_stats = train_sft(
            examples, epochs=epochs, lr=lr, seed=self.seed)

    def train_dpo(self, sva_bug_entries: Optional[Iterable[SvaBugEntry]] = None,
                  beta: float = 0.1, n_samples: int = 20,
                  epochs: int = 4, lr: float = 0.05) -> None:
        """DPO stage: mine challenging cases from the SFT policy and
        preference-optimise against them."""
        if self.weights is None:
            raise RuntimeError("train_sft must run before train_dpo")
        examples = self._train_examples
        if sva_bug_entries is not None:
            fresh = []
            for entry in sva_bug_entries:
                example = self._example_for_entry(entry)
                if example is not None:
                    fresh.append(example)
            if fresh:
                examples = fresh
        sva_examples = [e for e in examples if e.weight >= 1.0]
        triples = mine_challenging(sva_examples, self.weights,
                                   temperature=self.temperature,
                                   n_samples=n_samples, seed=self.seed + 7)
        self.n_challenging = len(triples)
        self.weights = train_dpo(triples, self.weights, beta=beta, lr=lr,
                                 epochs=epochs, seed=self.seed + 8)
        self.weights, self.margin_scale = calibrate_margin(
            sva_examples, self.weights, temperature=self.temperature)

    def clone_checkpoint(self, name: str) -> "AssertSolver":
        """Snapshot the current stage under a new name."""
        clone = AssertSolver(self.seed, self.temperature, name)
        clone.lm = self.lm
        clone.weights = None if self.weights is None else self.weights.copy()
        clone.sft_stats = self.sft_stats
        clone.n_challenging = self.n_challenging
        clone.margin_scale = self.margin_scale
        return clone

    # -- inference -------------------------------------------------------------

    def _score(self, problem: Problem
               ) -> "tuple[CandidateSpace, CaseContext, np.ndarray]":
        space = enumerate_repairs(problem.source)
        context = CaseContext(problem.source, problem.spec, problem.logs,
                              self.lm)
        matrix = context.matrix(space.candidates)
        if self.weights is None:
            logits = np.zeros(len(space))
        else:
            logits = matrix @ self.weights
        return space, context, logits

    def generate(self, problem: Problem, n: int = 20,
                 rng: Optional[random.Random] = None,
                 temperature: Optional[float] = None) -> List[SolverResponse]:
        """Draw ``n`` temperature samples (the paper's n = 20, T = 0.2).

        ``temperature`` overrides the model default — best-of-n workflows
        that re-verify each sample mechanically (see examples/) want a
        higher exploration temperature than the paper's scoring runs.
        """
        rng = rng or random.Random(self.seed + 99)
        space, context, logits = self._score(problem)
        if not len(space):
            return [SolverResponse(0, "", "", "no repair candidates found")
                    for _ in range(n)]
        use_t = self.temperature if temperature is None else temperature
        indices = sample_indices(logits, use_t, n, rng)
        return [self._response(space.candidates[i], context) for i in indices]

    def solve(self, problem: Problem) -> SolverResponse:
        """Greedy single answer (argmax candidate)."""
        space, context, logits = self._score(problem)
        if not len(space):
            return SolverResponse(0, "", "", "no repair candidates found")
        best = int(np.argmax(logits))
        return self._response(space.candidates[best], context)

    def _response(self, candidate: RepairCandidate,
                  context: CaseContext) -> SolverResponse:
        cot = self._chain_of_thought(candidate, context)
        return SolverResponse(candidate.line, candidate.old_line,
                              candidate.new_line, cot)

    def _chain_of_thought(self, candidate: RepairCandidate,
                          context: CaseContext) -> str:
        labels = ", ".join(context.labels) or "an assertion"
        cone = ", ".join(sorted(context.cone)[:6]) or "the output signals"
        return (f"Step 1: The logs show {labels} failing. "
                f"Step 2: Its value depends on {cone}. "
                f"Step 3: Line {candidate.line} ('{candidate.old_line}') "
                f"drives that cone and deviates from the specification. "
                f"Step 4: Applying '{'; '.join(candidate.descriptions[:1])}' "
                f"restores the intended behaviour: '{candidate.new_line}'.")
