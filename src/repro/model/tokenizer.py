"""Verilog-aware tokenization for the n-gram language model.

Identifiers are kept whole, numbers are bucketed by magnitude class (so
``8'd3`` and ``8'd5`` share a token but ``8'd0`` is distinct — zero/one
literals carry structural meaning), and operators are single tokens.  The
goal is a vocabulary where a one-token mutation usually produces a
lower-probability line, which is exactly the signal the localization
features need.
"""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(
    r"""
    (?P<num>\d+'[sS]?[bdohBDOH][0-9a-fA-FxXzZ_?]+|\d+)
  | (?P<id>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<op><<<|>>>|===|!==|\|=>|\|->|==|!=|<=|>=|&&|\|\||<<|>>|\*\*|\#\#
          |[-+*/%&|^~!<>=?:;,.(){}\[\]@#])
    """,
    re.VERBOSE,
)

BOS = "<s>"
EOS = "</s>"


def _number_token(text: str) -> str:
    """Map a numeric literal to a value-class token.

    Small values (0-15) stay distinct — a +/-1 constant mutation must move
    the line to a different token sequence for the LM to notice it.  Large
    values are bucketed by magnitude; their repair signal comes from the
    literal-consistency features instead.
    """
    if "'" in text:
        base_char = text.split("'", 1)[1][0].lower()
        if base_char == "s":
            base_char = text.split("'", 1)[1][1].lower()
        digits = text.split(base_char, 1)[1].replace("_", "")
        base = {"b": 2, "d": 10, "o": 8, "h": 16}.get(base_char, 10)
        try:
            value = int(digits, base)
        except ValueError:
            return "<NUMX>"
    else:
        value = int(text)
    if value < 16:
        return f"<NUM:{value}>"
    if value < 64:
        return "<NUMS>"
    return "<NUML>"


def tokenize_line(line: str) -> List[str]:
    """Token stream of one source line (no sentinels)."""
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(line):
        if match.lastgroup == "num":
            tokens.append(_number_token(match.group()))
        else:
            tokens.append(match.group())
    return tokens


def tokenize_text(text: str) -> List[List[str]]:
    """Per-line token streams for a whole source text, skipping blanks."""
    lines = []
    for raw in text.splitlines():
        tokens = tokenize_line(raw.strip())
        if tokens:
            lines.append(tokens)
    return lines
