"""The AssertSolver surrogate model (paper Section III).

The paper fine-tunes Deepseek-Coder-6.7b in three stages; offline we build
a *trainable* surrogate whose three stages play the same roles and are
genuinely learned from the generated datasets:

- **PT** (:mod:`repro.model.ngram_lm`): an interpolated n-gram language
  model trained on Verilog-PT text.  Its contribution downstream is
  surprisal: mutated lines sit off the distribution of healthy Verilog, so
  LM score is a strong localization feature — the mechanism by which
  "continual pretraining boosts downstream performance" shows up here.
- **SFT** (:mod:`repro.model.sft`): a linear-softmax ranker over the
  repair-candidate space (:mod:`repro.model.candidates`), trained with
  cross-entropy on ⟨Question, Answer⟩ pairs from SVA-Bug (+ Verilog-Bug as
  the auxiliary task).
- **DPO** (:mod:`repro.model.dpo`): preference optimisation (β = 0.1) on
  challenging cases — train inputs where 20 temperature samples from the
  SFT policy contain at least one wrong answer — sharpening the policy
  exactly as the paper describes (higher pass@1, lower diversity).

Inference (:class:`repro.model.assertsolver.AssertSolver`) samples n = 20
JSON responses at temperature 0.2, mirroring Section IV-E.
"""

__all__ = ["AssertSolver", "SolverResponse"]


def __getattr__(name):
    if name in __all__:
        from repro.model import assertsolver

        return getattr(assertsolver, name)
    raise AttributeError(f"module 'repro.model' has no attribute {name!r}")
