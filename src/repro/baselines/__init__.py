"""Surrogate baseline models for the paper's Table IV comparison.

The paper compares AssertSolver with closed-source (Claude-3.5, GPT-4,
o1-preview) and open-source (CodeLlama-7b, Llama-3.1-8b,
Deepseek-Coder-6.7b) models.  None of them can run offline, so each is
modelled as a *capability profile* (documented in DESIGN.md): a per-case
knows/doesn't-know draw driven by case difficulty (bug type, code length,
human origin) plus per-draw correctness, diversity and JSON-format
compliance rates.  Profiles are calibrated so the published relative
standings hold; absolute numbers are surrogate-calibrated, which
EXPERIMENTS.md states explicitly next to every table.
"""

from repro.baselines.engine import BaselineModel
from repro.baselines.profiles import BASELINE_PROFILES, BaselineProfile, get_profile

__all__ = ["BaselineModel", "BaselineProfile", "BASELINE_PROFILES", "get_profile"]
