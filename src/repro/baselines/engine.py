"""The baseline inference engine.

Given an SVA-Eval case, a profile draws — deterministically per
(model, case) via a hash-seeded RNG, so results are reproducible across
runs and machines — whether the model "knows" the case, then samples n
responses:

- known + per-draw success  -> the golden (line, fix);
- failure                   -> a plausible wrong answer: another line in
  the failing assertion's cone with a superficial edit (what a wrong LLM
  answer actually looks like);
- format error              -> an unparseable response (always judged
  incorrect), modelling the JSON-compliance problems the paper reports
  for open-source models.

The engine *does* read the golden solution — these are surrogates whose
purpose is to reproduce the comparative structure of Table IV, not
independent solvers; DESIGN.md documents this substitution.
"""

from __future__ import annotations

import hashlib
import random
import re
from typing import List

from repro.baselines.profiles import BaselineProfile, case_difficulty, sigmoid
from repro.bugs.taxonomy import LENGTH_BINS
from repro.datagen.records import SvaEvalCase
from repro.model.assertsolver import SolverResponse

_EDIT_SWAPS = [("==", "!="), ("&&", "||"), ("+", "-"), ("<", ">"),
               ("&", "|"), ("1'b1", "1'b0")]


class BaselineModel:
    """One surrogate baseline bound to a profile."""

    def __init__(self, profile: BaselineProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    @property
    def name(self) -> str:
        return self.profile.name

    # -- determinism ---------------------------------------------------------

    def _case_rng(self, case: SvaEvalCase) -> random.Random:
        digest = hashlib.md5(
            f"{self.profile.name}|{case.case_id}|{self.seed}".encode()
        ).hexdigest()
        return random.Random(int(digest[:12], 16))

    # -- inference -------------------------------------------------------------

    def knows_case(self, case: SvaEvalCase, rng: random.Random) -> bool:
        entry = case.entry
        bin_index = LENGTH_BINS.index(entry.length_bin())
        difficulty = case_difficulty(
            kind=entry.record.kind.value,
            relation=entry.relation.value,
            conditionality=entry.record.conditionality.value,
            length_bin_index=bin_index,
            human=(case.origin == "human"))
        return rng.random() < sigmoid(self.profile.skill - difficulty)

    def generate_case(self, case: SvaEvalCase, n: int = 20
                      ) -> List[SolverResponse]:
        rng = self._case_rng(case)
        knows = self.knows_case(case, rng)
        per_draw = (self.profile.know_rate if knows
                    else self.profile.guess_rate)
        responses = []
        for _ in range(n):
            if rng.random() < self.profile.format_error_rate:
                responses.append(SolverResponse(0, "", "<malformed response>"))
                continue
            if rng.random() < per_draw:
                record = case.record
                responses.append(SolverResponse(
                    record.line, record.buggy_line, record.fixed_line,
                    cot=f"{self.name}: located the fault on line {record.line}."))
            else:
                responses.append(self._wrong_answer(case, rng))
        return responses

    def _wrong_answer(self, case: SvaEvalCase,
                      rng: random.Random) -> SolverResponse:
        lines = case.entry.buggy_source_with_sva.splitlines()
        candidates = [i + 1 for i, text in enumerate(lines)
                      if ("<=" in text or "assign" in text or "if" in text)
                      and i + 1 != case.record.line]
        if candidates:
            line_no = rng.choice(candidates)
        else:
            line_no = max(1, case.record.line - 1)
        text = " ".join(lines[line_no - 1].split())
        fix = self._superficial_edit(text, rng)
        return SolverResponse(line_no, text, fix,
                              cot=f"{self.name}: suspected line {line_no}.")

    def _superficial_edit(self, text: str, rng: random.Random) -> str:
        swaps = list(_EDIT_SWAPS)
        rng.shuffle(swaps)
        for old, new in swaps:
            if old in text:
                return text.replace(old, new, 1)
        match = re.search(r"\d+'d(\d+)", text)
        if match:
            value = int(match.group(1)) + 1
            return text[:match.start(1)] + str(value) + text[match.end(1):]
        return text


def make_baseline(name: str, seed: int = 0) -> BaselineModel:
    from repro.baselines.profiles import get_profile

    return BaselineModel(get_profile(name), seed)
