"""Capability profiles for the Table IV baseline models.

Each profile has:

- ``skill``: the model's latent ability; per-case "does the model know this
  one" is ``sigmoid(skill - difficulty(case))``;
- ``know_rate``: per-draw correctness when the case is known (temperature
  still produces occasional misses);
- ``guess_rate``: per-draw correctness when unknown (lucky localization);
- ``format_error_rate``: probability a draw is malformed JSON — the paper
  notes open-source models often deviated from the required format.

Difficulty follows the paper's Fig. 4 structure: longer code and
Var/Indirect/Cond bugs are harder, human-crafted cases are harder (RQ3's
~19% relative pass@1 drop emerges from the human offset).

Calibration targets are the published Table IV numbers; the test suite
asserts the *ordering* and the human-vs-machine drop, not the absolutes.
"""

from __future__ import annotations

import math
from typing import Dict


class BaselineProfile:
    __slots__ = ("name", "skill", "know_rate", "guess_rate",
                 "format_error_rate")

    def __init__(self, name: str, skill: float, know_rate: float,
                 guess_rate: float, format_error_rate: float = 0.0):
        self.name = name
        self.skill = skill
        self.know_rate = know_rate
        self.guess_rate = guess_rate
        self.format_error_rate = format_error_rate


# Difficulty contributions (logits).
KIND_DIFFICULTY: Dict[str, float] = {"Var": 1.3, "Op": 0.25, "Value": 0.0}
RELATION_DIFFICULTY: Dict[str, float] = {"Indirect": 0.8, "Direct": 0.0}
COND_DIFFICULTY: Dict[str, float] = {"Cond": 0.35, "Non_cond": 0.0}
LENGTH_BIN_DIFFICULTY = [0.0, 0.3, 0.6, 0.9, 1.3]
HUMAN_DIFFICULTY = 0.5


def sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def case_difficulty(kind: str, relation: str, conditionality: str,
                    length_bin_index: int, human: bool) -> float:
    difficulty = KIND_DIFFICULTY.get(kind, 0.0)
    difficulty += RELATION_DIFFICULTY.get(relation, 0.0)
    difficulty += COND_DIFFICULTY.get(conditionality, 0.0)
    index = max(0, min(length_bin_index, len(LENGTH_BIN_DIFFICULTY) - 1))
    difficulty += LENGTH_BIN_DIFFICULTY[index]
    if human:
        difficulty += HUMAN_DIFFICULTY
    return difficulty


# Published pass@1/pass@5 on SVA-Eval (for the record, Table IV):
#   Claude-3.5        74.52 / 83.83
#   GPT-4             57.90 / 78.27
#   o1-preview        76.57 / 87.74
#   Deepseek-6.7b      4.35 / 15.62
#   CodeLlama-7b       5.89 / 16.89
#   Llama-3.1-8b      19.92 / 32.08
BASELINE_PROFILES: Dict[str, BaselineProfile] = {
    "o1-preview": BaselineProfile("o1-preview", skill=2.05,
                                  know_rate=0.94, guess_rate=0.10),
    "Claude-3.5": BaselineProfile("Claude-3.5", skill=1.95,
                                  know_rate=0.92, guess_rate=0.06),
    "GPT-4": BaselineProfile("GPT-4", skill=1.05,
                             know_rate=0.86, guess_rate=0.08),
    "Llama-3.1-8b": BaselineProfile("Llama-3.1-8b", skill=-0.65,
                                    know_rate=0.72, guess_rate=0.035,
                                    format_error_rate=0.12),
    "CodeLlama-7b": BaselineProfile("CodeLlama-7b", skill=-2.30,
                                    know_rate=0.60, guess_rate=0.015,
                                    format_error_rate=0.25),
    "Deepseek-coder-6.7b": BaselineProfile("Deepseek-coder-6.7b", skill=-2.60,
                                           know_rate=0.55, guess_rate=0.012,
                                           format_error_rate=0.30),
}


def get_profile(name: str) -> BaselineProfile:
    try:
        return BASELINE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(BASELINE_PROFILES))
        raise KeyError(f"unknown baseline {name!r}; known: {known}") from None
